/**
 * @file
 * Dynamic instruction records: the fetch-queue entry (pre-rename) and the
 * reorder-buffer entry (post-rename).
 */

#ifndef DMP_CORE_DYN_INST_HH
#define DMP_CORE_DYN_INST_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "bpred/predictor.hh"

#include "bpred/target_predictors.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace dmp::core
{

/** Kinds of entries flowing through the pipeline. */
enum class UopKind : std::uint8_t
{
    /** A program instruction. */
    Normal,
    /** enter.pred.path: creates CP1, defines p1 (section 2.4). */
    EnterPred,
    /** enter.alternate.path: creates CP2, restores CP1, defines p2. */
    EnterAlt,
    /** exit.pred: triggers select-uop insertion. */
    ExitPred,
    /** select-uop: dest = p ? srcTrue : srcFalse. */
    Select,
    /**
     * Front-end-internal marker: restore the active rename map from an
     * episode checkpoint (case-3 / early-exit redirection to the CFM).
     * Consumes no ROB entry.
     */
    RestoreMap,
    /**
     * Front-end-internal marker: a dual-path fork resolved; if the
     * alternate stream won, its rename map becomes the active one.
     * Consumes no ROB entry.
     */
    DualCollapse,
};

/** Which dynamically-predicated path an entry belongs to. */
enum class PathId : std::uint8_t
{
    None,      ///< not under dynamic predication
    Predicted, ///< first-fetched path (p1)
    Alternate, ///< second-fetched path (p2)
};

/** Monotonic episode identifier (one per dynamic-predication instance). */
using EpisodeId = std::uint64_t;
constexpr EpisodeId kNoEpisode = ~0ULL;

/**
 * The fields rename transfers verbatim from a fetch-queue entry into
 * the ROB record. FetchedInst and DynInst both lay this block out
 * byte-identically at offset 0 (enforced by the static_asserts below),
 * so renameProgramInst moves it with one bounded memcpy instead of a
 * field-by-field copy — this runs once per renamed instruction. Do not
 * reorder one struct's block without the other.
 */
#define DMP_FRONT_CTX_FIELDS \
    UopKind kind = UopKind::Normal; \
    PathId path = PathId::None; \
    bool isCondBranch = false; \
    bool isControl = false; \
    bool predTaken = false; \
    bool lowConfidence = false; \
    /** This conditional branch started the episode. */ \
    bool isDivergeStarter = false; \
    /** Fetched while the front-end was (transitively) on a wrong path \
     *  according to the oracle tracker; measurement only. */ \
    bool oracleWrongPath = false; \
    Addr pc = 0; \
    isa::Inst si; \
    Addr predNextPc = 0; \
    bpred::PredictionInfo predInfo; \
    EpisodeId episode = kNoEpisode; \
    std::uint32_t confIndex = 0;

/** A fetched, not-yet-renamed entry in the front-end pipeline. */
struct FetchedInst
{
    DMP_FRONT_CTX_FIELDS

    /** Cycle this entry reaches the rename stage. */
    Cycle renameReadyAt = 0;
    /** Cycle this entry was fetched (trace/pipeview lifecycle). */
    Cycle fetchedAt = 0;

    bool usedOracleDirection = false;

    // Dynamic predication context.
    PredId pred = kNoPred;

    // Fetch-state snapshot carried to rename for checkpointing (control
    // instructions only): state *before* this instruction's own effects.
    std::uint64_t ghrAtFetch = 0;
    bpred::ReturnAddressStack::Checkpoint rasAtFetch;
    EpisodeId cpEpisode = kNoEpisode;
    PathId cpPath = PathId::None;
    Addr cpChosenCfm = kNoAddr;
    std::uint32_t cpPathCount = 0;
};


/**
 * Scheduler/ROB state of one in-flight instruction.
 *
 * The fields the scheduler and checker touch on every-cycle scans —
 * sequence number / slot validity, the dispatched/issued/executed/
 * awaiting-predicate flags, the outstanding-dependency count, the
 * destination physical register, the scheduled completion cycle, and
 * the predicate id — do NOT live here: they sit in parallel arrays
 * owned by Core (robSeq/robState/robDeps/robDest/robCompleteAt/
 * robPred), indexed by ROB slot, so the commit scan, wakeup network,
 * and predicate broadcast walk dense cache lines instead of striding
 * through this record.
 */
struct DynInst
{
    // Shared prefix (see DMP_FRONT_CTX_FIELDS): identity, branch
    // prediction context, and dynamic-predication tags, byte-identical
    // to the front of FetchedInst.
    DMP_FRONT_CTX_FIELDS

    // Renaming. (The allocated destination lives in Core::robDest.)
    PhysReg src1 = kNoPhysReg;
    PhysReg src2 = kNoPhysReg;
    PhysReg oldDest = kNoPhysReg;
    ArchReg archDest = 0;
    bool hasDest = false;

    // Select-uop operands: srcTrue = committed mapping if predicate TRUE.
    PhysReg selTrue = kNoPhysReg;
    PhysReg selFalse = kNoPhysReg;

    // Predication. (The predicate id lives in Core::robPred.)
    /** Lifecycle stamp (see note above struct end): fetch cycle. */
    std::uint32_t fetchedAt = 0;
    bool predResolved = false;
    bool predValue = true;
    /** Early-exit / mdb conversion turned this diverge branch back into a
     *  normal branch: mispredict now flushes. */
    bool revertedToNormal = false;

    // Branch state.
    /** Lifecycle stamp: rename cycle. */
    std::uint32_t renamedAt = 0;
    bool actualTaken = false;
    /** Lifecycle stamp: issue cycle. */
    std::uint32_t issuedAt = 0;
    Addr actualNextPc = 0;
    bool mispredicted = false;
    /** Lifecycle stamp: writeback cycle. */
    std::uint32_t completedAt = 0;
    std::int32_t checkpointId = -1;

    // Memory state.
    std::int32_t sbIndex = -1; ///< store-buffer slot for stores
    Addr memAddr = kNoAddr;
    Word result = 0; ///< dataflow result (dest value / store data)

    // Note on the fetchedAt/renamedAt/issuedAt/completedAt lifecycle
    // stamps interleaved above: they are truncated to 32 bits and
    // placed into alignment padding holes so the ROB entry stays the
    // same size it was before tracing existed (cache footprint of ROB
    // walks is hot). 0 == stage not reached. Deltas against the
    // current cycle are exact in mod-2^32 arithmetic because an
    // instruction's in-flight lifetime is far below 2^32 cycles.

    bool isLoad() const { return isa::isLoad(si.op); }
    bool isStore() const { return isa::isStore(si.op); }
    bool
    countsAsProgramInst() const
    {
        return kind == UopKind::Normal;
    }
};

/**
 * Byte span of the shared front-context prefix: everything up to and
 * including confIndex, the last DMP_FRONT_CTX_FIELDS member. The
 * offset checks below pin each member to the same position in both
 * structs, so renameProgramInst's prefix memcpy is exact.
 */
inline constexpr std::size_t kFrontCtxBytes =
    offsetof(DynInst, confIndex) + sizeof(std::uint32_t);

static_assert(std::is_trivially_copyable_v<FetchedInst>);
static_assert(std::is_trivially_copyable_v<DynInst>);
static_assert(offsetof(FetchedInst, kind) == offsetof(DynInst, kind));
static_assert(offsetof(FetchedInst, path) == offsetof(DynInst, path));
static_assert(offsetof(FetchedInst, isCondBranch) ==
              offsetof(DynInst, isCondBranch));
static_assert(offsetof(FetchedInst, isControl) ==
              offsetof(DynInst, isControl));
static_assert(offsetof(FetchedInst, predTaken) ==
              offsetof(DynInst, predTaken));
static_assert(offsetof(FetchedInst, lowConfidence) ==
              offsetof(DynInst, lowConfidence));
static_assert(offsetof(FetchedInst, isDivergeStarter) ==
              offsetof(DynInst, isDivergeStarter));
static_assert(offsetof(FetchedInst, oracleWrongPath) ==
              offsetof(DynInst, oracleWrongPath));
static_assert(offsetof(FetchedInst, pc) == offsetof(DynInst, pc));
static_assert(offsetof(FetchedInst, si) == offsetof(DynInst, si));
static_assert(offsetof(FetchedInst, predNextPc) ==
              offsetof(DynInst, predNextPc));
static_assert(offsetof(FetchedInst, predInfo) ==
              offsetof(DynInst, predInfo));
static_assert(offsetof(FetchedInst, episode) ==
              offsetof(DynInst, episode));
static_assert(offsetof(FetchedInst, confIndex) ==
              offsetof(DynInst, confIndex));
static_assert(offsetof(FetchedInst, confIndex) + sizeof(std::uint32_t) ==
              kFrontCtxBytes);

/** Stable reference into the ROB slot array. */
struct InstRef
{
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
};


} // namespace dmp::core

#endif // DMP_CORE_DYN_INST_HH
