/**
 * @file
 * Dynamic instruction records: the fetch-queue entry (pre-rename) and the
 * reorder-buffer entry (post-rename).
 */

#ifndef DMP_CORE_DYN_INST_HH
#define DMP_CORE_DYN_INST_HH

#include <cstdint>

#include "bpred/predictor.hh"
#include "bpred/target_predictors.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace dmp::core
{

/** Kinds of entries flowing through the pipeline. */
enum class UopKind : std::uint8_t
{
    /** A program instruction. */
    Normal,
    /** enter.pred.path: creates CP1, defines p1 (section 2.4). */
    EnterPred,
    /** enter.alternate.path: creates CP2, restores CP1, defines p2. */
    EnterAlt,
    /** exit.pred: triggers select-uop insertion. */
    ExitPred,
    /** select-uop: dest = p ? srcTrue : srcFalse. */
    Select,
    /**
     * Front-end-internal marker: restore the active rename map from an
     * episode checkpoint (case-3 / early-exit redirection to the CFM).
     * Consumes no ROB entry.
     */
    RestoreMap,
    /**
     * Front-end-internal marker: a dual-path fork resolved; if the
     * alternate stream won, its rename map becomes the active one.
     * Consumes no ROB entry.
     */
    DualCollapse,
};

/** Which dynamically-predicated path an entry belongs to. */
enum class PathId : std::uint8_t
{
    None,      ///< not under dynamic predication
    Predicted, ///< first-fetched path (p1)
    Alternate, ///< second-fetched path (p2)
};

/** Monotonic episode identifier (one per dynamic-predication instance). */
using EpisodeId = std::uint64_t;
constexpr EpisodeId kNoEpisode = ~0ULL;

/** A fetched, not-yet-renamed entry in the front-end pipeline. */
struct FetchedInst
{
    UopKind kind = UopKind::Normal;
    Addr pc = 0;
    isa::Inst si;
    /** Cycle this entry reaches the rename stage. */
    Cycle renameReadyAt = 0;
    /** Cycle this entry was fetched (trace/pipeview lifecycle). */
    Cycle fetchedAt = 0;

    // Branch prediction context (conditional + indirect control).
    bool isCondBranch = false;
    bool isControl = false;
    bool predTaken = false;
    Addr predNextPc = 0;
    bpred::PredictionInfo predInfo;
    std::uint32_t confIndex = 0;
    bool lowConfidence = false;
    bool usedOracleDirection = false;

    // Dynamic predication context.
    EpisodeId episode = kNoEpisode;
    PathId path = PathId::None;
    PredId pred = kNoPred;
    /** This conditional branch started the episode. */
    bool isDivergeStarter = false;

    /** Fetched while the front-end was (transitively) on a wrong path
     *  according to the oracle tracker; measurement only. */
    bool oracleWrongPath = false;

    // Fetch-state snapshot carried to rename for checkpointing (control
    // instructions only): state *before* this instruction's own effects.
    std::uint64_t ghrAtFetch = 0;
    bpred::ReturnAddressStack::Checkpoint rasAtFetch;
    EpisodeId cpEpisode = kNoEpisode;
    PathId cpPath = PathId::None;
    Addr cpChosenCfm = kNoAddr;
    std::uint32_t cpPathCount = 0;
};

/** Scheduler/ROB state of one in-flight instruction. */
struct DynInst
{
    // Identity.
    std::uint64_t seq = 0;
    Addr pc = 0;
    isa::Inst si;
    UopKind kind = UopKind::Normal;
    bool valid = false; ///< slot occupied

    // Renaming.
    PhysReg src1 = kNoPhysReg;
    PhysReg src2 = kNoPhysReg;
    PhysReg dest = kNoPhysReg;
    PhysReg oldDest = kNoPhysReg;
    ArchReg archDest = 0;
    bool hasDest = false;

    // Select-uop operands: srcTrue = committed mapping if predicate TRUE.
    PhysReg selTrue = kNoPhysReg;
    PhysReg selFalse = kNoPhysReg;

    // Predication.
    PredId pred = kNoPred;
    /** Lifecycle stamp (see note above struct end): fetch cycle. */
    std::uint32_t fetchedAt = 0;
    EpisodeId episode = kNoEpisode;
    PathId path = PathId::None;
    bool predResolved = false;
    bool predValue = true;
    bool isDivergeStarter = false;
    /** Early-exit / mdb conversion turned this diverge branch back into a
     *  normal branch: mispredict now flushes. */
    bool revertedToNormal = false;

    // Scheduling.
    std::uint32_t depsOutstanding = 0;
    bool dispatched = false;  ///< entered the wakeup network
    bool issued = false;
    bool executed = false;
    bool awaitingPredicate = false; ///< select-uop waiting for predicate
    Cycle completeAt = kNeverCycle;

    // Branch state.
    bool isCondBranch = false;
    bool isControl = false;
    bool predTaken = false;
    /** Lifecycle stamp: rename cycle. */
    std::uint32_t renamedAt = 0;
    Addr predNextPc = 0;
    bool actualTaken = false;
    /** Lifecycle stamp: issue cycle. */
    std::uint32_t issuedAt = 0;
    Addr actualNextPc = 0;
    bool mispredicted = false;
    /** Lifecycle stamp: writeback cycle. */
    std::uint32_t completedAt = 0;
    bpred::PredictionInfo predInfo;
    std::uint32_t confIndex = 0;
    bool lowConfidence = false;
    std::int32_t checkpointId = -1;

    // Memory state.
    std::int32_t sbIndex = -1; ///< store-buffer slot for stores
    Addr memAddr = kNoAddr;
    Word result = 0; ///< dataflow result (dest value / store data)

    // Measurement.
    bool oracleWrongPath = false;

    // Note on the fetchedAt/renamedAt/issuedAt/completedAt lifecycle
    // stamps interleaved above: they are truncated to 32 bits and
    // placed into alignment padding holes so the ROB entry stays the
    // same size it was before tracing existed (cache footprint of ROB
    // walks is hot). 0 == stage not reached. Deltas against the
    // current cycle are exact in mod-2^32 arithmetic because an
    // instruction's in-flight lifetime is far below 2^32 cycles.

    bool isLoad() const { return isa::isLoad(si.op); }
    bool isStore() const { return isa::isStore(si.op); }
    bool
    countsAsProgramInst() const
    {
        return kind == UopKind::Normal;
    }
};

/** Stable reference into the ROB slot array. */
struct InstRef
{
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
};

} // namespace dmp::core

#endif // DMP_CORE_DYN_INST_HH
