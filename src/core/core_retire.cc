/**
 * @file
 * In-order retirement: architectural commit, predicated-FALSE
 * instruction disposal (section 2.5), store commit through the
 * predicate-aware store buffer, and retirement-time predictor training
 * (section 2.3: the PHT is updated at retire and never sees
 * predicated-FALSE branches).
 */

#include "common/logging.hh"
#include "common/trace.hh"
#include "core/core.hh"

namespace dmp::core
{

using isa::kInstBytes;
using isa::Opcode;

bool
Core::retireStage()
{
    unsigned retired = 0;
    for (unsigned w = 0; w < p.retireWidth && robCount > 0; ++w) {
        const std::uint32_t slot = robHead;
        DynInst &di = rob[slot];
        if (!(robState[slot] & kRobExecuted))
            break;
        ++retired;
        const std::uint64_t seq = robSeq[slot];
        dmp_assert(robPred[slot] == kNoPred || di.predResolved,
                   "unresolved predicate at retirement");

        commitInst(slot, di);
        scNotifyRetire(di, seq, robPred[slot]);
        acNotifyRetire(di, robPred[slot]);
        if (di.kind == UopKind::Normal)
            st.fetchToRetire.sample(std::uint32_t(now) - di.fetchedAt);
        if (pipeView)
            pipeViewEmit(di, seq, false);

        bool halt = di.kind == UopKind::Normal &&
                    di.si.op == Opcode::HALT &&
                    !(di.predResolved && !di.predValue);

        robSeq[slot] = 0;
        robHead = (robHead + 1) % p.robSize;
        --robCount;

        if (halt) {
            isHalted = true;
            retiredArch.pc = di.pc + kInstBytes;
            // Discard everything younger than the committed HALT
            // (wrong-path or false-path leftovers past program end).
            squashYoungerThan(seq);
            sb.squashYoungerThan(seq);
            clearFetchQueue();
            break;
        }
    }
    return retired > 0;
}


void
Core::commitInst(std::uint32_t slot, DynInst &di)
{
    const std::uint64_t seq = robSeq[slot];
    const bool is_false =
        robPred[slot] != kNoPred && di.predResolved && !di.predValue;

    switch (di.kind) {
      case UopKind::Select: {
        // The select-uop commits the merged value and supersedes the
        // selected source mapping (the non-selected one is freed by its
        // own predicated-FALSE producer).
        retiredArch.write(di.archDest, di.result);
        prf.free(di.predValue ? di.selTrue : di.selFalse, 4, seq);
        ++st.retiredSelectUops;

        break;
      }
      case UopKind::EnterPred:
      case UopKind::EnterAlt:
      case UopKind::ExitPred:
        ++st.retiredExtraUops;
        break;
      case UopKind::Normal: {
        if (is_false) {
            // A predicated-FALSE instruction frees the physical register
            // it allocated itself and leaves no architectural trace.
            ++st.retiredFalseInsts;
            if (di.hasDest)
                prf.free(robDest[slot], 3, seq); // false-path self free
            if (di.isStore())
                sb.retireHead(seq); // dropped, not sent to memory
            break;
        }

        if (di.hasDest) {
            retiredArch.write(di.archDest, di.result);
            if (di.oldDest != kNoPhysReg)
                prf.free(di.oldDest, 2, seq); // superseded mapping
        }
        if (di.isStore()) {
            SbEntry e = sb.retireHead(seq);

            dmp_assert(e.addrKnown, "retiring store without address");
            if (!e.dead) {
                memory->store(e.addr, e.data);
                caches.storeAccess(e.addr, now);
            }
        }
        ++st.retiredInsts;
        DMP_TRACE(Commit, now, seq, "core.retire", trace::hex(di.pc),
                  " ", isa::opcodeName(di.si.op));

        if (di.isCondBranch) {
            ++st.retiredCondBranches;
            if (di.actualNextPc != di.predNextPc) {
                ++st.retiredMispredCondBranches;
                DMP_TRACE(Commit, now, seq, "core.retire",

                          "mispredict pc=", trace::hex(di.pc),
                          " starter=", int(di.isDivergeStarter),
                          " mark=", int(prog.mark(di.pc) != nullptr),
                          " lowconf=", int(di.lowConfidence));
            }
            trainPredictors(di);
        } else if (di.isControl) {
            ++st.retiredControl;
            if (isa::isIndirect(di.si.op)) {
                itc.update(di.pc, di.predInfo.ghr, di.actualNextPc);
            } else if (di.actualTaken) {
                btb.update(di.pc, di.actualNextPc);
            }
        }
        break;
      }
      default:
        dmp_panic("commitInst: bad uop kind");
    }

    if (di.checkpointId >= 0)
        cpPool.release(di.checkpointId, seq);
}


void
Core::trainPredictors(DynInst &di)
{
    // Section 2.7.4 extension: optionally exclude dynamically predicated
    // diverge branches from direction-predictor training.
    bool was_dpred_starter =
        di.isDivergeStarter && di.episode != kNoEpisode;
    if (!(p.extSelectiveUpdate && was_dpred_starter)) {
        if (perceptron)
            perceptron->train(di.pc, di.actualTaken, di.predInfo);
        else
            predictor->train(di.pc, di.actualTaken, di.predInfo);
    }

    if (!p.perfectConfidence)
        jrs->update(di.confIndex, di.actualNextPc != di.predNextPc);

    if (di.actualTaken)
        btb.update(di.pc, di.actualNextPc);
}

} // namespace dmp::core
