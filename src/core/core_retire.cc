/**
 * @file
 * In-order retirement: architectural commit, predicated-FALSE
 * instruction disposal (section 2.5), store commit through the
 * predicate-aware store buffer, and retirement-time predictor training
 * (section 2.3: the PHT is updated at retire and never sees
 * predicated-FALSE branches).
 */

#include "common/logging.hh"
#include "common/trace.hh"
#include "core/core.hh"

namespace dmp::core
{

using isa::kInstBytes;
using isa::Opcode;

void
Core::retireStage()
{
    for (unsigned w = 0; w < p.retireWidth && robCount > 0; ++w) {
        DynInst &di = rob[robHead];
        if (!di.executed)
            break;
        dmp_assert(di.pred == kNoPred || di.predResolved,
                   "unresolved predicate at retirement");

        commitInst(di);
        scNotifyRetire(di);
        acNotifyRetire(di);
        if (di.kind == UopKind::Normal)
            st.fetchToRetire.sample(std::uint32_t(now) - di.fetchedAt);
        if (pipeView)
            pipeViewEmit(di, false);

        bool halt = di.kind == UopKind::Normal &&
                    di.si.op == Opcode::HALT &&
                    !(di.predResolved && !di.predValue);

        di.valid = false;
        robHead = (robHead + 1) % p.robSize;
        --robCount;

        if (halt) {
            isHalted = true;
            retiredArch.pc = di.pc + kInstBytes;
            // Discard everything younger than the committed HALT
            // (wrong-path or false-path leftovers past program end).
            squashYoungerThan(di.seq);
            sb.squashYoungerThan(di.seq);
            clearFetchQueue();
            break;
        }
    }
}

void
Core::commitInst(DynInst &di)
{
    const bool is_false =
        di.pred != kNoPred && di.predResolved && !di.predValue;

    switch (di.kind) {
      case UopKind::Select: {
        // The select-uop commits the merged value and supersedes the
        // selected source mapping (the non-selected one is freed by its
        // own predicated-FALSE producer).
        retiredArch.write(di.archDest, di.result);
        prf.free(di.predValue ? di.selTrue : di.selFalse, 4, di.seq);
        ++st.retiredSelectUops;
        break;
      }
      case UopKind::EnterPred:
      case UopKind::EnterAlt:
      case UopKind::ExitPred:
        ++st.retiredExtraUops;
        break;
      case UopKind::Normal: {
        if (is_false) {
            // A predicated-FALSE instruction frees the physical register
            // it allocated itself and leaves no architectural trace.
            ++st.retiredFalseInsts;
            if (di.hasDest)
                prf.free(di.dest, 3, di.seq); // false-path self free
            if (di.isStore())
                sb.retireHead(di.seq); // dropped, not sent to memory
            break;
        }

        if (di.hasDest) {
            retiredArch.write(di.archDest, di.result);
            if (di.oldDest != kNoPhysReg)
                prf.free(di.oldDest, 2, di.seq); // superseded mapping
        }
        if (di.isStore()) {
            SbEntry e = sb.retireHead(di.seq);
            dmp_assert(e.addrKnown, "retiring store without address");
            if (!e.dead) {
                memory->store(e.addr, e.data);
                caches.storeAccess(e.addr, now);
            }
        }
        ++st.retiredInsts;
        DMP_TRACE(Commit, now, di.seq, "core.retire", trace::hex(di.pc),
                  " ", isa::opcodeName(di.si.op));

        if (di.isCondBranch) {
            ++st.retiredCondBranches;
            if (di.actualNextPc != di.predNextPc) {
                ++st.retiredMispredCondBranches;
                DMP_TRACE(Commit, now, di.seq, "core.retire",
                          "mispredict pc=", trace::hex(di.pc),
                          " starter=", int(di.isDivergeStarter),
                          " mark=", int(prog.mark(di.pc) != nullptr),
                          " lowconf=", int(di.lowConfidence));
            }
            trainPredictors(di);
        } else if (di.isControl) {
            ++st.retiredControl;
            if (isa::isIndirect(di.si.op)) {
                itc.update(di.pc, di.predInfo.ghr, di.actualNextPc);
            } else if (di.actualTaken) {
                btb.update(di.pc, di.actualNextPc);
            }
        }
        break;
      }
      default:
        dmp_panic("commitInst: bad uop kind");
    }

    if (di.checkpointId >= 0)
        cpPool.release(di.checkpointId, di.seq);
}

void
Core::trainPredictors(DynInst &di)
{
    // Section 2.7.4 extension: optionally exclude dynamically predicated
    // diverge branches from direction-predictor training.
    bool was_dpred_starter =
        di.isDivergeStarter && di.episode != kNoEpisode;
    if (!(p.extSelectiveUpdate && was_dpred_starter)) {
        if (perceptron)
            perceptron->train(di.pc, di.actualTaken, di.predInfo);
        else
            predictor->train(di.pc, di.actualTaken, di.predInfo);
    }

    if (!p.perfectConfidence)
        jrs->update(di.confIndex, di.actualNextPc != di.predNextPc);

    if (di.actualTaken)
        btb.update(di.pc, di.actualNextPc);
}

} // namespace dmp::core
