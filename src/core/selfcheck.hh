/**
 * @file
 * Core-side interface of the microarchitectural self-checking subsystem
 * (src/check). The core only knows this abstract sink; the concrete
 * checker lives in dmp_check, which links dmp_core — never the other
 * way around — so the dependency stays one-directional.
 *
 * Hook calls are compiled in only under DMP_SELFCHECK_BUILD (a CMake
 * option, ON by default, OFF in the release/performance presets so the
 * KIPS hot path carries not even the null-pointer test).
 */

#ifndef DMP_CORE_SELFCHECK_HH
#define DMP_CORE_SELFCHECK_HH

#include <cstdint>

#include "common/types.hh"

namespace dmp::core
{

struct DynInst;

/**
 * Observer of the core's architectural commit points and recovery
 * events. Implementations may read the entire core state (the concrete
 * checker is a friend of Core) and signal a broken invariant by
 * throwing; the core performs no work after a hook call that the hook's
 * exception could leave half-done within the same event.
 */
class SelfCheckSink
{
  public:
    virtual ~SelfCheckSink();

    /** End of one Core::tick(), after every stage ran. */
    virtual void onCycleEnd() = 0;

    /**
     * One entry retired: called right after commitInst applied its
     * architectural effects, while `di` is still valid in the ROB.
     * `seq` and `pred` are the entry's SoA-resident sequence number
     * and predicate id (no longer stored inside DynInst).
     */
    virtual void onRetire(const DynInst &di, std::uint64_t seq,
                          PredId pred) = 0;


    /**
     * A pipeline flush completed: everything younger than `survive_seq`
     * is squashed and fetch was redirected to `redirect_pc`.
     */
    virtual void onFlush(std::uint64_t survive_seq, Addr redirect_pc) = 0;

    /** Core::reset() finished; checker state must restart too. */
    virtual void onReset() = 0;
};

} // namespace dmp::core

#endif // DMP_CORE_SELFCHECK_HH
