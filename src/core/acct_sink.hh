/**
 * @file
 * Core-side interface of the cycle-accounting subsystem
 * (src/analysis/accounting.hh). Mirrors the SelfCheckSink pattern: the
 * core only knows this abstract sink, and the concrete implementation
 * lives in dmp_analysis — which does not link dmp_core, so the
 * destructor is defined inline here instead of in a core TU.
 *
 * Probe calls are compiled in only when DMP_TRACING_ON is set (the
 * default; -DDMP_TRACING=OFF removes them with the rest of the tracing
 * statements) and cost one null-pointer test per site when no sink is
 * attached.
 */

#ifndef DMP_CORE_ACCT_SINK_HH
#define DMP_CORE_ACCT_SINK_HH

#include <cstdint>

#include "common/types.hh"

namespace dmp::core
{

// Same alias as core/dyn_inst.hh (redeclared so this header stays
// self-contained for dmp_analysis, which includes nothing else of core).
using EpisodeId = std::uint64_t;

/** What happened during one completed core cycle. */
struct AcctCycleSample
{
    Cycle cycle = 0;            ///< index of the cycle that just ran
    unsigned usefulRetired = 0; ///< committed program instructions
    unsigned falseRetired = 0;  ///< predicated-FALSE program insts
    unsigned uopRetired = 0;    ///< marker/select uops retired
    bool robEmpty = false;
    bool fetchStalled = false;   ///< fetch serving a redirect penalty
    bool frontendActive = false; ///< fetch has a live pc or queued work
    bool renameBlocked = false;  ///< rename stalled on a backend resource
};

/** Final state of one dynamic-predication (or dual-path) episode. */
struct AcctEpisodeEnd
{
    EpisodeId id = ~0ULL; // kNoEpisode
    Addr divergePc = kNoAddr;
    std::uint8_t exitCase = 0;  ///< core::ExitCase value (0 = none)
    std::uint8_t converted = 0; ///< core::ConversionReason value
    std::uint32_t fetchedInsts = 0;
    bool dead = false; ///< squashed by an older misprediction
    bool isDualPath = false;
    bool resolvedCorrect = false;
};

/**
 * Observer of the core's cycle-level activity and episode lifecycle.
 * One onCycleEnd per tick; episode end may be reported more than once
 * for the same id (classified, then squashed later) — implementations
 * must deduplicate by id.
 */
class AcctSink
{
  public:
    virtual ~AcctSink() = default;

    /** End of one Core::tick(), before the cycle counter advances. */
    virtual void onCycleEnd(const AcctCycleSample &s) = 0;

    /**
     * `span` consecutive cycles the core skipped because no stage had
     * work, all sharing the same classification flags; `first` carries
     * the flags and the index of the span's first cycle (retire counts
     * are zero by construction). The default expands the span into
     * per-cycle onCycleEnd calls so existing sinks observe exactly the
     * sequence a non-skipping core would have produced; sinks with a
     * cheaper bulk form (see CycleAccounting) override this.
     */
    virtual void
    onIdleSpan(const AcctCycleSample &first, std::uint64_t span)
    {
        AcctCycleSample s = first;
        for (std::uint64_t i = 0; i < span; ++i) {
            s.cycle = first.cycle + i;
            onCycleEnd(s);
        }
    }

    /** A dpred or dual-path episode entered at fetch. */
    virtual void onEpisodeStart(EpisodeId id, Addr diverge_pc,
                                bool is_dual, Cycle now) = 0;

    /** An episode finished (classified, collapsed, or squashed). */
    virtual void onEpisodeEnd(const AcctEpisodeEnd &e, Cycle now) = 0;

    /** A pipeline flush: `squashed` program insts thrown away. */
    virtual void onFlush(Addr branch_pc, std::uint64_t squashed,
                         Cycle now) = 0;

    /**
     * A predication-overhead entry retired: a predicated-FALSE program
     * instruction (is_uop = false) or a marker/select uop (true),
     * attributed to the episode's diverge branch.
     */
    virtual void onPredicatedRetire(Addr diverge_pc, bool is_uop) = 0;
};

} // namespace dmp::core

#endif // DMP_CORE_ACCT_SINK_HH
