/**
 * @file
 * Store buffer with predicate-aware forwarding (paper section 2.5).
 *
 * Entries are allocated at rename (program order), filled at execute,
 * and drained at retire (commit to memory) or squash. Forwarding obeys
 * the paper's three legal cases:
 *  (1) a non-predicated store forwards to any later load;
 *  (2) a predicated store with a *ready* predicate forwards (TRUE) or is
 *      skipped (FALSE);
 *  (3) a predicated store with an unready predicate forwards only to a
 *      later load with the same predicate id; otherwise the load waits.
 */

#ifndef DMP_CORE_STORE_BUFFER_HH
#define DMP_CORE_STORE_BUFFER_HH

#include <cstdint>
#include <deque>

#include "common/logging.hh"
#include "common/types.hh"

namespace dmp::core
{

/** One in-flight store. */
struct SbEntry
{
    std::uint64_t seq = 0;
    Addr addr = kNoAddr;
    Word data = 0;
    bool addrKnown = false;
    PredId pred = kNoPred;
    bool predResolved = false;
    bool predValue = true;
    /** Dropped (predicate FALSE) but not yet retired. */
    bool dead = false;
};

/** Outcome of a forwarding probe. */
enum class ForwardResult : std::uint8_t
{
    NoMatch,   ///< no older store to this address; go to the cache
    Forward,   ///< value available from a forwardable store
    MustWait,  ///< blocked: unknown address or rule (3) violation
};

/** FIFO store buffer ordered by sequence number. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(unsigned capacity_) : cap(capacity_) {}

    bool full() const { return entries.size() >= cap; }
    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Entries oldest-first (checker inspection). */
    const std::deque<SbEntry> &view() const { return entries; }

    /** Mutable entry access for checker fault injection and tests. */
    std::deque<SbEntry> &view() { return entries; }

    /** Allocate at rename. */
    void
    allocate(std::uint64_t seq, PredId pred, bool pred_resolved,
             bool pred_value)
    {
        dmp_assert(!full(), "store buffer overflow");
        dmp_assert(entries.empty() || entries.back().seq < seq,
                   "store buffer out of order");
        SbEntry e;
        e.seq = seq;
        e.pred = pred;
        e.predResolved = pred == kNoPred ? true : pred_resolved;
        e.predValue = pred_value;
        entries.push_back(e);
    }

    /** Fill address/data at execute. */
    void
    fill(std::uint64_t seq, Addr addr, Word data)
    {
        SbEntry *e = find(seq);
        dmp_assert(e, "fill of unknown store buffer entry");
        e->addr = addr;
        e->data = data;
        e->addrKnown = true;
    }

    /** Predicate broadcast: resolve all entries tagged with `pred`. */
    void
    resolvePredicate(PredId pred, bool value)
    {
        for (auto &e : entries) {
            if (e.pred == pred && !e.predResolved) {
                e.predResolved = true;
                e.predValue = value;
                if (!value)
                    e.dead = true;
            }
        }
    }

    /**
     * Probe for a load at `load_seq` to address `addr` with predicate
     * `load_pred`. On Forward, `data_out` holds the forwarded value.
     */
    ForwardResult
    probe(std::uint64_t load_seq, Addr addr, PredId load_pred,
          Word &data_out) const
    {
        // Youngest-first walk of older stores.
        for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
            const SbEntry &e = *it;
            if (e.seq >= load_seq)
                continue;
            if (e.dead)
                continue;
            if (!e.addrKnown)
                return ForwardResult::MustWait; // conservative ordering
            if (e.addr != addr)
                continue;
            if (e.pred == kNoPred || e.predResolved) {
                if (e.predResolved && !e.predValue)
                    continue; // FALSE store: skip, keep searching older
                data_out = e.data;
                return ForwardResult::Forward; // rules (1) and (2)
            }
            // Rule (3): unready predicate.
            if (e.pred == load_pred) {
                data_out = e.data;
                return ForwardResult::Forward;
            }
            return ForwardResult::MustWait;
        }
        return ForwardResult::NoMatch;
    }

    /**
     * Retire the oldest entry (must match `seq`).
     * @return the entry; caller commits it to memory unless dead/FALSE.
     */
    SbEntry
    retireHead(std::uint64_t seq)
    {
        dmp_assert(!entries.empty() && entries.front().seq == seq,
                   "store buffer head mismatch at retire");
        SbEntry e = entries.front();
        entries.pop_front();
        return e;
    }

    /** Squash every entry younger than `survive_seq`. */
    void
    squashYoungerThan(std::uint64_t survive_seq)
    {
        while (!entries.empty() && entries.back().seq > survive_seq)
            entries.pop_back();
    }

    void clear() { entries.clear(); }

  private:
    SbEntry *
    find(std::uint64_t seq)
    {
        // Binary search: entries are seq-sorted.
        std::size_t lo = 0, hi = entries.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (entries[mid].seq < seq)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo < entries.size() && entries[lo].seq == seq)
            return &entries[lo];
        return nullptr;
    }

    std::deque<SbEntry> entries;
    unsigned cap;
};

} // namespace dmp::core

#endif // DMP_CORE_STORE_BUFFER_HH
