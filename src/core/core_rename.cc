/**
 * @file
 * Rename/dispatch stage: in-order register renaming with per-branch
 * checkpoints, the enter.pred.path / enter.alternate.path / exit.pred
 * uop effects of section 2.4, and select-uop insertion driven by the
 * M bits of the two register alias tables.
 */

#include <cstring>

#include "common/logging.hh"
#include "common/trace.hh"
#include "core/core.hh"


namespace dmp::core
{

using isa::Inst;
using isa::kInstBytes;
using isa::Opcode;

bool
Core::renameStage()
{
    unsigned renamed = 0;
    while (renamed < p.fetchWidth && !fetchQueue.empty()) {
        FetchedInst &fi = fetchQueue.front();
        if (fi.renameReadyAt > now)
            break;
        if (!renameOne(fi)) {
            acNoteRenameBlocked();
            break; // resource stall (side-effect-free failure)
        }
        fetchQueue.pop_front();
        ++renamed;
    }
    return renamed > 0;
}

RenameMap &
Core::renameMapFor(PathId path, EpisodeId ep_id)
{
    if (path == PathId::Alternate && ep_id != kNoEpisode) {
        Episode *ep = episodeIfAlive(ep_id);
        if (ep && ep->isDualPath) {
            if (!dualAltMapValid) {
                dmp_assert(ep->atBranchMapValid,
                           "dual fork renamed without a base map");
                dualAltMap = ep->atBranchMap;
                dualAltMapValid = true;
            }
            return dualAltMap;
        }
    }
    return activeMap;
}

bool
Core::renameOne(FetchedInst &fi)
{
    switch (fi.kind) {
      case UopKind::Normal: {
        // Dual-path: discard queued instructions of the losing stream.
        if (fi.episode != kNoEpisode && fi.path != PathId::None) {
            Episode *ep = episodeIfAlive(fi.episode);
            if (ep && ep->isDualPath && ep->resolved) {
                PathId winner = ep->resolvedCorrect ? PathId::Predicted
                                                    : PathId::Alternate;
                if (fi.path != winner)
                    return true; // consumed without dispatch
            }
        }
        // Resource checks.
        if (robFull())
            return false;
        bool needs_dest = isa::writesDest(fi.si);
        if (needs_dest && !prf.hasFree())
            return false;
        if (isa::isStore(fi.si.op) && sb.full())
            return false;
        if (fi.isControl && !cpPool.hasFree())
            return false;
        renameProgramInst(fi);
        return true;
      }
      case UopKind::EnterPred: {
        if (robFull())
            return false;
        renameEnterPred(fi);
        return true;
      }
      case UopKind::EnterAlt: {
        if (robFull())
            return false;
        renameEnterAlt(fi);
        return true;
      }
      case UopKind::ExitPred:
        return renameExitPred(fi);
      case UopKind::RestoreMap:
        renameRestoreMap(fi);
        return true;
      case UopKind::DualCollapse: {
        Episode *ep = episodeIfAlive(fi.episode);
        episode(fi.episode).pendingMarkers--;
        if (ep && ep->resolved && !ep->resolvedCorrect) {
            if (dualAltMapValid) {
                activeMap = dualAltMap;
            } else {
                // No alternate-stream instruction renamed before the
                // fork resolved: the winning stream continues from the
                // fork-point map.
                dmp_assert(ep->atBranchMapValid,
                           "dual collapse without a fork map");
                activeMap = ep->atBranchMap;
            }
        }
        dualAltMapValid = false;
        return true;
      }
      default:
        dmp_panic("renameOne: bad uop kind");
    }
}

void
Core::renameProgramInst(FetchedInst &fi)
{
    InstRef ref = allocRob(/*reset_entry=*/false);
    DynInst &di = rob[ref.slot];

    // The whole shared front-context prefix (identity, prediction
    // context, predication tags) transfers in one bounded copy; layout
    // equality is enforced by the static_asserts in dyn_inst.hh. The
    // rest of the record is stamped from a default-constructed blank,
    // so together the two copies write every byte of the (skipped)
    // allocRob reset exactly once.
    static const DynInst kBlank{};
    std::memcpy(&di, &fi, kFrontCtxBytes);
    std::memcpy(reinterpret_cast<char *>(&di) + kFrontCtxBytes,
                reinterpret_cast<const char *>(&kBlank) + kFrontCtxBytes,
                sizeof(DynInst) - kFrontCtxBytes);
    di.fetchedAt = std::uint32_t(fi.fetchedAt);
    di.renamedAt = std::uint32_t(now);


    RenameMap &map = renameMapFor(fi.path, fi.episode);


    if (isa::readsSrc1(fi.si))
        di.src1 = map.lookup(fi.si.rs1);
    if (isa::readsSrc2(fi.si))
        di.src2 = map.lookup(fi.si.rs2);

    if (isa::writesDest(fi.si)) {
        di.hasDest = true;
        di.archDest = fi.si.op == Opcode::CALL ? isa::kLinkReg : fi.si.rd;
        di.oldDest = map.lookup(di.archDest);
        PhysReg dest = prf.alloc();
        robDest[ref.slot] = dest;
        prf.noteAlloc(dest, ref.seq);
        map.write(di.archDest, dest);
    }

    // Predication tag.
    if (fi.pred != kNoPred) {
        robPred[ref.slot] = fi.pred;
        const PredState &ps = preds.get(fi.pred);
        if (ps.resolved) {
            di.predResolved = true;
            di.predValue = ps.value;
        }
    }

    if (di.isStore()) {
        sb.allocate(ref.seq, fi.pred, di.predResolved, di.predValue);
        di.sbIndex = 0; // entries are found by seq
    }

    if (di.isControl) {
        di.checkpointId = cpPool.alloc(ref.seq);

        Checkpoint &cp = cpPool.get(di.checkpointId);
        cp.map = map;
        cp.ghr = fi.ghrAtFetch;
        cp.ras = fi.rasAtFetch;
        cp.episode = fi.cpEpisode;
        cp.dpredPath = fi.cpPath;
        cp.chosenCfm = fi.cpChosenCfm;
        cp.pathInstCount = fi.cpPathCount;
    }

    // A dual-path fork carries the base map for the alternate stream.
    if (fi.isDivergeStarter && fi.episode != kNoEpisode) {
        Episode *ep = episodeIfAlive(fi.episode);
        if (ep) {
            ep->divergeSeq = ref.seq;

            if (ep->isDualPath) {
                ep->atBranchMap = map;
                ep->atBranchMapValid = true;
            }
        }
    }

    DMP_TRACE(Rename, now, ref.seq, "core.rename", trace::hex(di.pc), " ",
              isa::opcodeName(di.si.op),
              fi.pred != kNoPred ? " predicated" : "");
    setupDependencies(ref);

}

void
Core::renameEnterPred(const FetchedInst &fi)
{
    Episode *ep = episodeIfAlive(fi.episode);
    episode(fi.episode).pendingMarkers--;

    // "Before entering dynamic predication mode, all M bits are
    // cleared" (section 2.4); CP1 is the RAT at the diverge branch.
    activeMap.clearMBits();
    if (ep) {
        ep->atBranchMap = activeMap;
        ep->atBranchMapValid = true;
    }

    InstRef ref = allocRob();
    DynInst &di = rob[ref.slot];
    di.kind = UopKind::EnterPred;
    di.episode = fi.episode;
    di.fetchedAt = std::uint32_t(fi.fetchedAt);
    di.renamedAt = std::uint32_t(now);
    setupDependencies(ref); // no sources: immediately ready
}

void
Core::renameEnterAlt(const FetchedInst &fi)
{
    Episode *ep = episodeIfAlive(fi.episode);
    episode(fi.episode).pendingMarkers--;

    if (ep) {
        dmp_assert(ep->atBranchMapValid, "EnterAlt without CP1");
        // CP2 := current RAT (end of predicted path, with its M bits);
        // then restore CP1 into the active RAT so the alternate path
        // renames against pre-branch state (section 2.4).
        ep->endPredMap = activeMap;
        ep->endPredMapValid = true;
        activeMap = ep->atBranchMap;
        activeMap.clearMBits();
    }

    DMP_TRACE(Rename, now, 0, "core.rename", "EP", fi.episode,
              " EnterAlt alive=", int(ep != nullptr));
    InstRef ref = allocRob();
    DynInst &di = rob[ref.slot];
    di.kind = UopKind::EnterAlt;
    di.episode = fi.episode;
    di.fetchedAt = std::uint32_t(fi.fetchedAt);
    di.renamedAt = std::uint32_t(now);
    setupDependencies(ref);
}

bool
Core::renameExitPred(const FetchedInst &fi)
{
    Episode *ep = episodeIfAlive(fi.episode);
    if (!ep || !ep->endPredMapValid) {
        // Degenerate (episode died mid-flight); consume the marker.
        episode(fi.episode).pendingMarkers--;
        return true;
    }

    // Select-uops are required for every architectural register whose
    // M bit is set in either RAT and whose mappings differ (sec. 2.4).
    // CP2 (the episode's end-of-predicted-path map) is never mutated
    // here: a nested flush can squash these select-uops, and a later
    // re-exit must regenerate them from intact M bits.
    unsigned needed = 0;
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r) {
        if ((ep->endPredMap.mBits[r] || activeMap.mBits[r]) &&
            ep->endPredMap.map[r] != activeMap.map[r]) {
            ++needed;
        }
    }

    // One exit uop plus the select-uops must fit this cycle.
    if (robCount + needed + 1 > p.robSize)
        return false;
    if (prf.numFree() < needed)
        return false;

    episode(fi.episode).pendingMarkers--;

    InstRef exit_ref = allocRob();
    DynInst &exit_uop = rob[exit_ref.slot];
    exit_uop.kind = UopKind::ExitPred;
    exit_uop.episode = fi.episode;
    exit_uop.fetchedAt = std::uint32_t(fi.fetchedAt);
    exit_uop.renamedAt = std::uint32_t(now);
    setupDependencies(exit_ref);

    for (unsigned r = 0; r < isa::kNumArchRegs; ++r) {
        if (!(ep->endPredMap.mBits[r] || activeMap.mBits[r]))
            continue;
        if (ep->endPredMap.map[r] == activeMap.map[r]) {
            activeMap.mBits.reset(r);
            continue;
        }
        InstRef ref = allocRob();
        DynInst &sel = rob[ref.slot];
        sel.kind = UopKind::Select;
        sel.episode = ep->id;
        sel.fetchedAt = std::uint32_t(fi.fetchedAt);
        sel.renamedAt = std::uint32_t(now);
        sel.archDest = ArchReg(r);
        sel.hasDest = true;
        sel.selTrue = ep->endPredMap.map[r];
        sel.selFalse = activeMap.map[r];
        PhysReg dest = prf.alloc();
        robDest[ref.slot] = dest;
        prf.noteAlloc(dest, ref.seq);
        robPred[ref.slot] = ep->p1;
        const PredState &ps = preds.get(ep->p1);
        if (ps.resolved) {
            sel.predResolved = true;
            sel.predValue = ps.value;
        }
        activeMap.map[r] = dest;
        activeMap.mBits.reset(r);
        setupDependencies(ref);

    }
    return true;
}

void
Core::renameRestoreMap(const FetchedInst &fi)
{
    Episode *ep = episodeIfAlive(fi.episode);
    episode(fi.episode).pendingMarkers--;
    DMP_TRACE(Rename, now, 0, "core.rename", "EP", fi.episode,
              " RestoreMap valid=", int(ep && ep->endPredMapValid));
    if (ep && ep->endPredMapValid) {
        // Case 3 / early exit: continue from the end-of-predicted-path
        // register state (section 2.6).
        activeMap = ep->endPredMap;
        activeMap.clearMBits();
    }
}

void
Core::setupDependencies(InstRef ref)
{
    const std::uint32_t slot = ref.slot;
    DynInst &di = rob[slot];
    robState[slot] |= kRobDispatched;

    auto depend = [&](PhysReg r) {
        if (r != kNoPhysReg && !prf.ready(r)) {
            prf.addWaiter(r, ref);
            ++robDeps[slot];
        }
    };

    if (di.kind == UopKind::Select) {
        if (di.predResolved) {
            depend(di.predValue ? di.selTrue : di.selFalse);
        } else {
            robState[slot] |= kRobAwaitPred;
        }
    } else if (di.kind == UopKind::Normal && robPred[slot] != kNoPred &&
               di.predResolved && !di.predValue) {

        // Renamed on a path already known to be predicated-FALSE (the
        // predicate resolved while this instruction was still in the
        // front end). Its source mappings may reference physical
        // registers the committing path has since released, so waiting
        // on them could deadlock; hardware would read stale values
        // here, which is harmless because the result is never
        // committed. Issue immediately with whatever the registers
        // hold.
    } else {
        depend(di.src1);
        depend(di.src2);
    }

    if (!(robState[slot] & kRobAwaitPred) && robDeps[slot] == 0)
        readyQueue.push(readyKey(ref));

}


} // namespace dmp::core
