/**
 * @file
 * Core configuration. Defaults reproduce Table 2 of the paper:
 * 8-wide fetch (up to 3 conditional branches, ends at the first taken
 * branch), 30-cycle minimum misprediction penalty, 512-entry reorder
 * buffer, 8-wide execute/retire, perceptron predictor, JRS confidence
 * estimator.
 */

#ifndef DMP_CORE_PARAMS_HH
#define DMP_CORE_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace dmp::core
{

/** Which branches are eligible for dynamic predication. */
enum class PredicationScope : std::uint8_t
{
    /** Baseline: no dynamic predication. */
    None,
    /** Dynamic Hammock Predication: simple-hammock marks only. */
    SimpleHammock,
    /** Diverge-Merge: compiler diverge marks (simple + complex). */
    Diverge,
};

/** Overall front-end speculation mode. */
enum class CoreMode : std::uint8_t
{
    /** Conventional speculative OoO core (possibly with predication). */
    Normal,
    /** Selective dual-path execution (Heil & Smith), section 5.3. */
    DualPath,
};

/** Which direction predictor the front-end instantiates. */
enum class PredictorKind : std::uint8_t
{
    Perceptron,
    Gshare,
    Bimodal,
    Hybrid,
};

/**
 * All knobs of one core instance.
 *
 * Serialized field-by-field into sim::configFingerprint (sim/batch.cc)
 * — extend the fingerprint when adding a knob here.
 */
struct CoreParams
{
    // ---- Front end (Table 2) ----
    unsigned fetchWidth = 8;
    unsigned maxCondBranchesPerFetch = 3;
    /**
     * Fetch-to-rename pipeline depth; this is the minimum branch
     * misprediction penalty (Table 2: 30 cycles).
     */
    unsigned frontendDepth = 30;
    unsigned fetchQueueCapacity = 0; ///< 0: frontendDepth * fetchWidth

    // ---- Window / execution (Table 2) ----
    unsigned robSize = 512;
    unsigned issueWidth = 8;
    unsigned retireWidth = 8;
    unsigned numPhysRegs = 0; ///< 0: robSize + 2 * kNumArchRegs
    unsigned storeBufferSize = 128;
    unsigned maxCheckpoints = 96;

    // ---- Latencies ----
    Cycle aluLatency = 1;
    Cycle mulLatency = 3;
    Cycle divLatency = 20;
    Cycle fpLatency = 4;
    Cycle branchLatency = 1;
    Cycle agenLatency = 1;       ///< address generation before cache access
    Cycle forwardLatency = 1;    ///< store-buffer forward

    // ---- Prediction ----
    PredictorKind predictor = PredictorKind::Perceptron;
    bool perfectCondPredictor = false; ///< perfect-cbp configuration
    bool perfectConfidence = false;    ///< -perf-conf configurations
    /**
     * Treat every conditional branch as low-confidence (predicate every
     * dynamic instance of a marked branch). Used by directed tests and
     * the confidence-ablation bench.
     */
    bool alwaysLowConfidence = false;
    unsigned btbEntries = 4096;
    unsigned rasEntries = 64;
    unsigned itcEntries = 65536;

    // ---- Dynamic predication ----
    CoreMode mode = CoreMode::Normal;
    PredicationScope predication = PredicationScope::None;
    /** Enhancement: multiple CFM points (section 2.7.1). */
    bool enhMultiCfm = false;
    /** Enhancement: early exit from dpred mode (section 2.7.2). */
    bool enhEarlyExit = false;
    /** Enhancement: multiple diverge branches (section 2.7.3). */
    bool enhMultiDiverge = false;
    /** Extension: dynamic predication of loop diverge branches (2.7.4). */
    bool extLoopBranches = false;
    /** Extension: selective branch predictor update policy (2.7.4) —
     *  do not train the direction predictor with dynamically predicated
     *  diverge branches to avoid destructive counter interference. */
    bool extSelectiveUpdate = false;
    /**
     * Static early-exit threshold used when a diverge branch carries no
     * compiler-selected one (or when forceStaticEarlyExit is set).
     */
    unsigned staticEarlyExitThreshold = 96;
    /** Ablation: ignore compiler-selected thresholds. */
    bool forceStaticEarlyExit = false;
    /** Hardware limit on unresolved predicate ids in flight. */
    unsigned predRegisters = 32;
    /** CFM CAM capacity (enhanced mode loads up to this many points). */
    unsigned cfmCamEntries = 8;
    /**
     * Hard cap on dynamically predicated instructions per path; a path
     * that exceeds it reverts the episode to normal branch prediction
     * (safety net mirroring the 120-instruction profiling bound).
     */
    unsigned maxDpredPathInsts = 256;

    // ---- Measurement ----
    /** Classify wrong-path fetches as control-dep/indep (Figure 1). */
    bool classifyWrongPath = false;
    /** Architectural memory image size for this core's data space. */
    std::size_t memoryBytes = 16 * 1024 * 1024;

    unsigned
    effectiveFetchQueueCapacity() const
    {
        return fetchQueueCapacity ? fetchQueueCapacity
                                  : frontendDepth * fetchWidth;
    }

    unsigned
    effectivePhysRegs() const
    {
        return numPhysRegs ? numPhysRegs : robSize + 128;
    }
};

} // namespace dmp::core

#endif // DMP_CORE_PARAMS_HH
