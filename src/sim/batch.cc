#include "sim/batch.hh"

#include <cstdlib>
#include <sstream>

#include "analysis/analysis.hh"
#include "common/logging.hh"
#include "common/trace.hh"

namespace dmp::sim
{

namespace
{

/** Exact serialization of a double (hexfloat: no rounding ambiguity). */
std::string
num(double v)
{
    std::ostringstream os;
    os << std::hexfloat << v;
    return os.str();
}

std::string
workloadFp(const workloads::WorkloadParams &p)
{
    std::ostringstream os;
    os << "it=" << p.iterations << ",seed=" << p.seed
       << ",base=" << p.dataBase;
    return os.str();
}

std::string
markerFp(const profile::MarkerConfig &m)
{
    std::ostringstream os;
    os << "ms=" << num(m.mispredShare) << ",mr=" << num(m.minMispredictRate)
       << ",rf=" << num(m.reconvergeFraction) << ",cd=" << m.maxCfmDistance
       << ",cp=" << m.maxCfmPoints << ",es=" << num(m.earlyExitScale)
       << ",el=" << m.earlyExitMin << ",eh=" << m.earlyExitMax
       << ",sr=" << m.cfmSampleRate << ",lb=" << m.markLoopBranches
       << ",pd=" << m.usePostDomFallback << ",pi=" << m.profileInsts;
    return os.str();
}

std::string
coreFp(const core::CoreParams &c)
{
    std::ostringstream os;
    os << "fw=" << c.fetchWidth << ",cb=" << c.maxCondBranchesPerFetch
       << ",fd=" << c.frontendDepth << ",fq=" << c.fetchQueueCapacity
       << ",rob=" << c.robSize << ",iw=" << c.issueWidth
       << ",rw=" << c.retireWidth << ",pr=" << c.numPhysRegs
       << ",sb=" << c.storeBufferSize << ",ck=" << c.maxCheckpoints
       << ",la=" << c.aluLatency << ",lm=" << c.mulLatency
       << ",ld=" << c.divLatency << ",lf=" << c.fpLatency
       << ",lb=" << c.branchLatency << ",lg=" << c.agenLatency
       << ",lw=" << c.forwardLatency << ",bp=" << unsigned(c.predictor)
       << ",pc=" << c.perfectCondPredictor << ",pf=" << c.perfectConfidence
       << ",al=" << c.alwaysLowConfidence << ",btb=" << c.btbEntries
       << ",ras=" << c.rasEntries << ",itc=" << c.itcEntries
       << ",md=" << unsigned(c.mode) << ",ps=" << unsigned(c.predication)
       << ",e1=" << c.enhMultiCfm << ",e2=" << c.enhEarlyExit
       << ",e3=" << c.enhMultiDiverge << ",x1=" << c.extLoopBranches
       << ",x2=" << c.extSelectiveUpdate
       << ",se=" << c.staticEarlyExitThreshold
       << ",fs=" << c.forceStaticEarlyExit << ",pg=" << c.predRegisters
       << ",cam=" << c.cfmCamEntries << ",dp=" << c.maxDpredPathInsts
       << ",cw=" << c.classifyWrongPath << ",mem=" << c.memoryBytes;
    return os.str();
}

} // namespace

std::string
configFingerprint(const SimConfig &cfg)
{
    std::ostringstream os;
    os << "wl:" << cfg.workload << "|train:" << workloadFp(cfg.train)
       << "|ref:" << workloadFp(cfg.ref) << "|marker:" << markerFp(cfg.marker)
       << "|core:" << coreFp(cfg.core) << "|mi=" << cfg.maxInsts
       << "|mc=" << cfg.maxCycles
       << "|sc=" << int(cfg.selfcheck);
    // Appended only when set so pre-accounting fingerprints (cached
    // bench artifacts, golden files) keep their exact byte form.
    if (cfg.accounting)
        os << "|acct=1";
    // Same append-only rule: Profile is the default mode, so profiled
    // configurations keep their pre-MarkMode fingerprints byte-exact.
    if (cfg.markMode != MarkMode::Profile)
        os << "|mark=" << markModeName(cfg.markMode);
    if (cfg.faultPlan) {
        os << "|fault=" << check::faultKindName(cfg.faultPlan->kind)
           << "@" << cfg.faultPlan->notBefore;
    }
    return os.str();
}

std::string
profileFingerprint(const SimConfig &cfg)
{
    // The compiler pass sees only the train binary, the marker
    // heuristics, and the architectural memory size.
    std::ostringstream os;
    os << "wl:" << cfg.workload << "|train:" << workloadFp(cfg.train)
       << "|marker:" << markerFp(cfg.marker)
       << "|mem=" << cfg.core.memoryBytes;
    if (cfg.markMode != MarkMode::Profile)
        os << "|mark=" << markModeName(cfg.markMode);
    return os.str();
}

unsigned
BatchRunner::defaultJobs()
{
    if (const char *env = std::getenv("DMP_BENCH_JOBS")) {
        unsigned long n = std::strtoul(env, nullptr, 0);
        if (n > 0)
            return unsigned(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

BatchRunner::BatchRunner(unsigned jobs_)
{
    unsigned n = jobs_ ? jobs_ : defaultJobs();
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back(
            [this](std::stop_token st) { workerLoop(st); });
}

BatchRunner::~BatchRunner()
{
    for (auto &w : workers)
        w.request_stop();
    cv.notify_all();
    // jthread joins on destruction; workers drain the queue first so
    // every outstanding future is satisfied.
}

void
BatchRunner::workerLoop(std::stop_token st)
{
    for (;;) {
        std::unique_ptr<Task> task;
        {
            std::unique_lock lk(mtx);
            if (!cv.wait(lk, st, [this] { return !queue.empty(); }))
                return; // stop requested, queue drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        try {
            task->promise.set_value(execute(*task));
        } catch (...) {
            task->promise.set_exception(std::current_exception());
        }
    }
}

std::shared_ptr<const BatchRunner::RefEntry>
BatchRunner::preparedProgram(const SimConfig &cfg)
{
    const std::string pkey = profileFingerprint(cfg);

    // Static synthesis needs no training run and must analyze the
    // binary that executes (the train build's seeded immediates
    // differ, so value-analysis proofs made there need not hold on
    // the ref build). Level 1 is skipped entirely; the marking and
    // its pre-flight happen on the ref program in level 2.
    const bool staticMarks = cfg.markMode == MarkMode::Static;

    // Level 1: profile + mark the train binary, once per pkey. The
    // first requester computes; concurrent requesters for the same key
    // block on the shared_future instead of re-profiling.
    std::shared_ptr<const TrainEntry> train;
    if (!staticMarks) {
        std::shared_future<std::shared_ptr<const TrainEntry>> trainFut;
        std::promise<std::shared_ptr<const TrainEntry>> trainProm;
        bool ownTrain = false;
        {
            std::lock_guard lk(mtx);
            auto it = trainCache.find(pkey);
            if (it != trainCache.end()) {
                nProfileHits.fetch_add(1, std::memory_order_relaxed);
                trainFut = it->second;
            } else {
                ownTrain = true;
                trainFut = trainProm.get_future().share();
                trainCache.emplace(pkey, trainFut);
                nProfileRuns.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (ownTrain) {
            try {
                auto e = std::make_shared<TrainEntry>();
                e->train =
                    workloads::buildWorkload(cfg.workload, cfg.train);
                e->report = markTrainProgram(e->train, cfg);
                // Pre-flight: lint the freshly marked program once per
                // cache entry. An illegal marking throws here, before
                // any simulation consumes it, and every waiter of this
                // entry observes the same LintError through the
                // shared_future.
                analysis::AnalysisOptions ao;
                ao.marker = cfg.marker;
                ao.maxPredicateDepth = cfg.core.predRegisters;
                ao.memoryBytes = cfg.core.memoryBytes;
                analysis::preflightOrThrow(e->train, ao, cfg.workload);
                trainProm.set_value(std::move(e));
            } catch (...) {
                trainProm.set_exception(std::current_exception());
            }
        }
        train = trainFut.get();
    }

    // Level 2: build the ref binary and transfer the marks, once per
    // (pkey, ref input). All core configurations of a figure share the
    // resulting program read-only.
    const std::string rkey = pkey + "|ref:" + workloadFp(cfg.ref);
    std::shared_future<std::shared_ptr<const RefEntry>> refFut;
    std::promise<std::shared_ptr<const RefEntry>> refProm;
    bool ownRef = false;
    {
        std::lock_guard lk(mtx);
        auto it = refCache.find(rkey);
        if (it != refCache.end()) {
            refFut = it->second;
        } else {
            ownRef = true;
            refFut = refProm.get_future().share();
            refCache.emplace(rkey, refFut);
            nMarkedBuilds.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (ownRef) {
        try {
            auto e = std::make_shared<RefEntry>();
            e->ref = workloads::buildWorkload(cfg.workload, cfg.ref);
            if (staticMarks) {
                e->report = markTrainProgram(e->ref, cfg);
                analysis::AnalysisOptions ao;
                ao.marker = cfg.marker;
                ao.maxPredicateDepth = cfg.core.predRegisters;
                ao.memoryBytes = cfg.core.memoryBytes;
                analysis::preflightOrThrow(e->ref, ao, cfg.workload);
            } else {
                profile::transferMarks(train->train, e->ref);
                e->report = train->report;
            }
            refProm.set_value(std::move(e));
        } catch (...) {
            refProm.set_exception(std::current_exception());
        }
    }
    return refFut.get();
}

std::shared_ptr<const SimResult>
BatchRunner::execute(const Task &task)
{
    {
        std::lock_guard lk(mtx);
        execOrder.push_back(task.key);
    }
    std::uint64_t run_no =
        nSimRuns.fetch_add(1, std::memory_order_relaxed) + 1;
    DMP_TRACE(Batch, 0, run_no, "sim.batch", "start ", task.cfg.workload,
              " key=", task.key.size(), "B");
    std::shared_ptr<const RefEntry> prep = preparedProgram(task.cfg);
    SimResult r = runSimOnProgram(prep->ref, prep->report, task.cfg);
    nSimNanos.fetch_add(std::uint64_t(r.hostSeconds * 1e9),
                        std::memory_order_relaxed);
    DMP_TRACE(Batch, 0, run_no, "sim.batch", "done ", task.cfg.workload,
              " cycles=", r.cycles, " retired=", r.retiredInsts,
              " host_ms=", std::uint64_t(r.hostSeconds * 1e3));
    return std::make_shared<const SimResult>(std::move(r));
}

std::shared_future<std::shared_ptr<const SimResult>>
BatchRunner::submit(const SimConfig &cfg)
{
    std::string key = configFingerprint(cfg);
    std::shared_future<std::shared_ptr<const SimResult>> fut;
    {
        std::lock_guard lk(mtx);
        auto it = memo.find(key);
        if (it != memo.end()) {
            nSimHits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
        auto task = std::make_unique<Task>();
        task->cfg = cfg;
        task->key = std::move(key);
        fut = task->promise.get_future().share();
        memo.emplace(task->key, fut);
        queue.push_back(std::move(task));
    }
    cv.notify_one();
    return fut;
}

const SimResult &
BatchRunner::get(const SimConfig &cfg)
{
    return *submit(cfg).get();
}

std::vector<SimResult>
BatchRunner::run(const std::vector<SimConfig> &configs)
{
    std::vector<std::shared_future<std::shared_ptr<const SimResult>>> futs;
    futs.reserve(configs.size());
    for (const SimConfig &cfg : configs)
        futs.push_back(submit(cfg));
    std::vector<SimResult> out;
    out.reserve(configs.size());
    for (auto &f : futs)
        out.push_back(*f.get());
    return out;
}

BatchStats
BatchRunner::stats() const
{
    BatchStats s;
    s.profileRuns = nProfileRuns.load(std::memory_order_relaxed);
    s.profileHits = nProfileHits.load(std::memory_order_relaxed);
    s.markedProgramBuilds = nMarkedBuilds.load(std::memory_order_relaxed);
    s.simRuns = nSimRuns.load(std::memory_order_relaxed);
    s.simHits = nSimHits.load(std::memory_order_relaxed);
    s.simSeconds = double(nSimNanos.load(std::memory_order_relaxed)) * 1e-9;
    return s;
}

std::vector<std::string>
BatchRunner::executionOrder() const
{
    std::lock_guard lk(mtx);
    return execOrder;
}

} // namespace dmp::sim
