/**
 * @file
 * Aggregation of --stats-json / DMP_STATS_JSON JSONL records into
 * figure-ready tables (the dmp-report CLI is a thin shell over this).
 *
 * A StatsRecord is one parsed simResultJson line (schema 1, see
 * EXPERIMENTS.md). The table builders turn a set of records into the
 * views the paper's evaluation uses: per-run summaries, top-down cycle
 * breakdowns, mode-vs-mode diffs, per-branch "who benefits from DMP"
 * rankings, and the Figure 11 flush-reduction computation — all from
 * the raw JSONL alone, no re-simulation. Tables render as aligned
 * text, Markdown, or JSON.
 */

#ifndef DMP_SIM_REPORT_HH
#define DMP_SIM_REPORT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dmp::sim
{

/** One per-branch analytics row from a record's accounting block. */
struct ReportBranchRow
{
    std::string pc; ///< "0x..." as emitted
    std::uint64_t episodes = 0;
    std::uint64_t dualEpisodes = 0;
    std::uint64_t mergedAtCfm = 0;
    std::uint64_t overshot = 0;
    std::uint64_t earlyExits = 0;
    std::uint64_t converted = 0;
    std::uint64_t squashed = 0;
    std::uint64_t fetchedInsts = 0;
    std::uint64_t falseInsts = 0;
    std::uint64_t extraUops = 0;
    std::uint64_t flushesAvoided = 0;
    std::uint64_t flushes = 0;
    double netCycles = 0;
};

/** One parsed stats-JSONL record. */
struct StatsRecord
{
    int schema = 0; ///< 0: record predates the schema field
    std::string label;
    std::string workload;
    double ipc = 0;
    std::uint64_t cycles = 0;
    std::uint64_t retiredInsts = 0;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, double> formulas;

    bool hasAccounting = false;
    /** Top-down buckets in emission order (name -> cycles). */
    std::vector<std::pair<std::string, std::uint64_t>> buckets;
    std::vector<ReportBranchRow> branches;

    /** Counter lookup tolerating absence (returns 0). */
    std::uint64_t counter(const std::string &name) const;
};

/**
 * Parse one JSONL line into a record.
 * @return true on success; on failure `err` explains why.
 */
bool parseStatsRecord(const std::string &line, StatsRecord &out,
                      std::string &err);

/**
 * Load every record of a JSONL file (blank lines skipped).
 * @return true on success; on failure `err` carries the line number.
 */
bool loadStatsJsonl(const std::string &path,
                    std::vector<StatsRecord> &out, std::string &err);

/** First record with the given label and workload, or nullptr. */
const StatsRecord *findRecord(const std::vector<StatsRecord> &records,
                              const std::string &label,
                              const std::string &workload);

/** Output renderings supported by the report tables. */
enum class ReportFormat
{
    Text,
    Json,
    Markdown,
};

/** Parse "text" | "json" | "md" (false on anything else). */
bool parseReportFormat(const std::string &name, ReportFormat &out);

/** One rendered-agnostic table: a title, a header, string cells. */
struct ReportTable
{
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    std::string render(ReportFormat f) const;
};

/** Render several tables (JSON: one array; text/md: blank-line join). */
std::string renderTables(const std::vector<ReportTable> &tables,
                         ReportFormat f);

/** Per-run overview: label, workload, IPC, cycles, flushes, MPKI. */
ReportTable summaryTable(const std::vector<StatsRecord> &records);

/**
 * Top-down cycle breakdown (records with accounting only): one row per
 * run, one column per bucket as a percentage of total cycles.
 */
ReportTable topdownTable(const std::vector<StatsRecord> &records);

/**
 * Mode-vs-mode comparison over workloads present under both labels:
 * IPC delta and flush reduction per workload, plus arithmetic means.
 */
ReportTable diffTable(const std::vector<StatsRecord> &records,
                      const std::string &label_a,
                      const std::string &label_b);

/**
 * Per-branch "who benefits" ranking across all records with
 * accounting: branches that entered episodes, best net benefit first,
 * truncated to `top_n` rows (0 = all).
 */
ReportTable branchTable(const std::vector<StatsRecord> &records,
                        std::size_t top_n);

/**
 * Figure 11: percentage reduction in pipeline flushes of `enh_label`
 * relative to `base_label`, per workload, with the arithmetic average
 * (the paper reports 31%).
 */
ReportTable flushReductionTable(const std::vector<StatsRecord> &records,
                                const std::string &base_label,
                                const std::string &enh_label);

/** 100 * (base - enh) / base; 0 when base is 0 (as bench/fig11). */
double flushReductionPct(std::uint64_t base, std::uint64_t enh);

/**
 * Static-marking agreement section: parse a dmp-mark --json report
 * (markgen schema 1, not a stats JSONL) and build one row per target —
 * mark counts, lint totals, and, for reports produced with the
 * comparison pass on, diverge precision/recall and CFM match rate
 * against the profiled marker, with a closing mean row. Feeds
 * dmp-report --markings and the CI release-job step summary.
 * @return true on success; on failure `err` says what was wrong.
 */
bool loadMarkingsTable(const std::string &path, ReportTable &out,
                       std::string &err);

/**
 * Abstract-interpretation proof summary: parse a dmp-lint --deep
 * --json report (lint schema 1 with per-target "absint" blocks) and
 * build one row per target — instruction/branch counts, proved
 * one-sided branches, trip-bounded loops, resolved indirects, and
 * whether the engine smeared or declined. Targets linted without
 * --deep get a dashed row. Feeds dmp-report --proofs and the CI
 * release-job step summary.
 * @return true on success; on failure `err` says what was wrong.
 */
bool loadProofsTable(const std::string &path, ReportTable &out,
                     std::string &err);

} // namespace dmp::sim

#endif // DMP_SIM_REPORT_HH
