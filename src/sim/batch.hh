/**
 * @file
 * Parallel batch-simulation engine.
 *
 * Every figure/table of the paper is a grid of independent cycle-level
 * simulations (workload x machine configuration). BatchRunner executes
 * such grids on a worker pool and layers two caches on top:
 *
 *  1. a result memo keyed by a *canonical fingerprint* of the complete
 *     SimConfig (workload, train/ref inputs, marker heuristics, every
 *     core knob, instruction/cycle budgets) — two submissions of the
 *     same experiment simulate once, and, unlike the old string-keyed
 *     bench RunCache, two experiments differing only in marker config
 *     or budgets never alias;
 *
 *  2. a profile/marking cache: the compiler pass (train-input profile
 *     run + diverge/CFM marking + mark transfer onto the ref binary)
 *     depends only on (workload, train input, marker config, memory
 *     size) — not on the core configuration — so it runs once per
 *     figure row and the marked isa::Program is shared read-only by
 *     all core configurations.
 *
 * Determinism: the simulator itself is single-threaded and seeded; the
 * pool only changes *where* each run executes, never what it computes.
 * Results are therefore bit-identical to a serial run and are returned
 * in submission order. With jobs=1 the pool degenerates to FIFO serial
 * execution.
 *
 * The worker count defaults to std::thread::hardware_concurrency and
 * can be overridden with the DMP_BENCH_JOBS environment variable or
 * explicitly per BatchRunner. The hot simulation loop takes no locks:
 * synchronization happens only at task granularity.
 */

#ifndef DMP_SIM_BATCH_HH
#define DMP_SIM_BATCH_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hh"

namespace dmp::sim
{

/**
 * Canonical, collision-free fingerprint of a complete SimConfig.
 * Serializes every field that can influence the simulation outcome;
 * used as the result-memo key.
 */
std::string configFingerprint(const SimConfig &cfg);

/**
 * Fingerprint of the compiler/profiling pass inputs only: workload,
 * train input, marker config, and memory size. Core timing knobs and
 * the ref input are excluded — they cannot change the marking.
 */
std::string profileFingerprint(const SimConfig &cfg);

/** Occupancy / cache-effectiveness counters of one BatchRunner. */
struct BatchStats
{
    /** Compiler passes actually executed (profile + mark, train run). */
    std::uint64_t profileRuns = 0;
    /** Profile-cache hits (marking reused from a previous task). */
    std::uint64_t profileHits = 0;
    /** Marked ref-input programs built (one per distinct ref input). */
    std::uint64_t markedProgramBuilds = 0;
    /** Timing simulations actually executed. */
    std::uint64_t simRuns = 0;
    /** Result-memo hits (identical SimConfig submitted again). */
    std::uint64_t simHits = 0;
    /** Summed host wall-clock of the executed timing runs (seconds).
     *  With a worker pool this exceeds elapsed real time. */
    double simSeconds = 0;
};

/**
 * Worker-pool executor for grids of independent simulations.
 * Thread-safe: submit()/get()/run() may be called from any thread.
 */
class BatchRunner
{
  public:
    /** @param jobs worker threads; 0 = defaultJobs(). */
    explicit BatchRunner(unsigned jobs = 0);
    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /** DMP_BENCH_JOBS if set (>0), else hardware_concurrency, min 1. */
    static unsigned defaultJobs();

    /** Number of worker threads in this pool. */
    unsigned jobs() const { return unsigned(workers.size()); }

    /**
     * Enqueue one configuration (deduplicated against everything this
     * runner has already seen) and return a future for its result. The
     * pointee is immutable and lives at least as long as the runner.
     */
    std::shared_future<std::shared_ptr<const SimResult>>
    submit(const SimConfig &cfg);

    /** submit() + wait. The reference lives as long as the runner. */
    const SimResult &get(const SimConfig &cfg);

    /**
     * Run a whole grid; results come back in submission order and are
     * bit-identical to calling runSim(configs[i]) serially.
     */
    std::vector<SimResult> run(const std::vector<SimConfig> &configs);

    /** Snapshot of the cache/execution counters. */
    BatchStats stats() const;

    /**
     * Result fingerprints in the order the pool *executed* them
     * (cache hits do not appear). With jobs=1 this equals submission
     * order; used by tests and diagnostics.
     */
    std::vector<std::string> executionOrder() const;

  private:
    /** Marked train program + report: one per profileFingerprint. */
    struct TrainEntry
    {
        isa::Program train; ///< marked train-input binary
        profile::MarkingReport report;
    };

    /** Marked ref program shared read-only by all core configs. */
    struct RefEntry
    {
        isa::Program ref; ///< ref-input binary with transferred marks
        profile::MarkingReport report;
    };

    struct Task
    {
        SimConfig cfg;
        std::string key;
        std::promise<std::shared_ptr<const SimResult>> promise;
    };

    void workerLoop(std::stop_token st);
    std::shared_ptr<const SimResult> execute(const Task &task);
    std::shared_ptr<const RefEntry> preparedProgram(const SimConfig &cfg);

    mutable std::mutex mtx;
    std::condition_variable_any cv;
    std::deque<std::unique_ptr<Task>> queue;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<const SimResult>>>
        memo;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<const TrainEntry>>>
        trainCache;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<const RefEntry>>>
        refCache;
    std::vector<std::string> execOrder;
    std::vector<std::jthread> workers;

    std::atomic<std::uint64_t> nProfileRuns{0};
    std::atomic<std::uint64_t> nProfileHits{0};
    std::atomic<std::uint64_t> nMarkedBuilds{0};
    std::atomic<std::uint64_t> nSimRuns{0};
    std::atomic<std::uint64_t> nSimHits{0};
    std::atomic<std::uint64_t> nSimNanos{0}; ///< summed run wall-clock
};

} // namespace dmp::sim

#endif // DMP_SIM_BATCH_HH
