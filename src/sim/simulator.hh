/**
 * @file
 * Experiment facade: builds a workload, runs the compiler/profiling
 * pass on the train input, transfers the markings onto the ref-input
 * binary, and runs the timing core — the full flow of paper section 3.
 */

#ifndef DMP_SIM_SIMULATOR_HH
#define DMP_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "check/checker.hh"
#include "core/core.hh"
#include "core/params.hh"
#include "isa/program.hh"
#include "profile/profiler.hh"
#include "workloads/workloads.hh"

namespace dmp::sim
{

/** How the ref program obtains its diverge/CFM markings. */
enum class MarkMode : std::uint8_t
{
    /** Profile the train input and transfer the marks (the paper). */
    Profile,
    /** Synthesize marks statically (analysis::synthesizeMarks). */
    Static,
    /** Run unmarked (hammock/diverge predication finds nothing). */
    None,
};

/** "profile" / "static" / "none". */
const char *markModeName(MarkMode m);

/** Parse a markModeName spelling (false on anything else). */
bool parseMarkMode(const std::string &name, MarkMode &out);

/**
 * One experiment's configuration.
 *
 * NOTE: every field here (and in the nested param structs) is part of
 * sim::configFingerprint (batch.hh) — when adding a field, extend the
 * fingerprint serialization or batch-cache entries may alias.
 */
struct SimConfig
{
    std::string workload = "bzip2";
    core::CoreParams core;             ///< Table 2 defaults
    profile::MarkerConfig marker;      ///< section 3.2 heuristics
    workloads::WorkloadParams train;   ///< profile ("train") input
    workloads::WorkloadParams ref;     ///< measurement ("ref") input
    /**
     * Marking source for the ref program. Profile reproduces the
     * paper's train-run flow; Static needs no training run at all
     * (ROADMAP "unmarked programs" axis); None leaves the image bare.
     */
    MarkMode markMode = MarkMode::Profile;
    /** Timing-run instruction budget (0 = to completion). */
    std::uint64_t maxInsts = 0;
    /** Timing-run cycle budget (0 = unlimited). */
    std::uint64_t maxCycles = 0;
    /**
     * Attach a CoreChecker to the timing run. Any mode other than Off
     * is fatal in a binary built without DMP_SELFCHECK_BUILD. A check
     * failure throws check::CheckError out of runSim/runSimOnProgram;
     * under BatchRunner this fails that run's future, not the batch.
     */
    check::Mode selfcheck = check::Mode::Off;
    /**
     * Test-only fault plan armed on the attached checker (non-owning;
     * must outlive the run). Ignored when selfcheck is Off.
     */
    const check::FaultPlan *faultPlan = nullptr;
    /**
     * Attach a cycle-accounting sink (analysis::CycleAccounting) to the
     * timing run: the result gains "acct_" counters and an accounting
     * JSON block. Fatal in a -DDMP_TRACING=OFF build (the probes are
     * compiled out there and the counters would silently read 0).
     */
    bool accounting = false;

    SimConfig()
    {
        train.seed = 0x7e41a; // "train input"
        ref.seed = 0x4ef;     // "ref input"
    }
};

/** Condensed results of one timing run. */
struct SimResult
{
    double ipc = 0;
    std::uint64_t cycles = 0;
    std::uint64_t retiredInsts = 0;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, DistSnapshot> distributions;
    std::unordered_map<std::string, double> formulas;
    profile::MarkingReport marking;

    // Host-side telemetry (sim speed, not simulated performance).
    double hostSeconds = 0;  ///< wall-clock of the timing run
    double hostInstRate = 0; ///< retired program insts per host second

    // Cycle accounting (present only when SimConfig::accounting ran;
    // the bucket/branch counters also appear in `counters` with an
    // "acct_" prefix).
    bool hasAccounting = false;
    std::string accountingJson; ///< analysis::CycleAccounting::json()

    /**
     * Counter lookup tolerating unknown names (returns 0, with a
     * one-shot dmp_warn so typos do not silently zero a figure).
     */
    std::uint64_t get(const std::string &name) const;

    /** Counter lookup that is fatal on an unknown name. */
    std::uint64_t require(const std::string &name) const;

    /** Distribution snapshot, or nullptr when the name is unknown. */
    const DistSnapshot *dist(const std::string &name) const;
};

/**
 * Version of the JSONL stats-record schema emitted by simResultJson
 * (dmp-run --stats-json, DMP_STATS_JSON bench export; documented in
 * EXPERIMENTS.md). Every record carries it as its first field,
 * "schema". Bump when a field is renamed or removed; adding fields is
 * backward compatible.
 */
constexpr int kStatsSchemaVersion = 1;

/**
 * Render one run as a single-line JSON object (a JSONL record):
 * {"schema":1, "label":..., "workload":..., "ipc":..., "cycles":...,
 *  "retired_insts":..., "host_seconds":..., "host_inst_rate":...,
 *  "counters":{...}, "distributions":{...}, "formulas":{...}[,
 *  "accounting":{...}]}. The accounting block appears only for runs
 * with SimConfig::accounting.
 *
 * @param extra optional pre-rendered extra top-level fields
 *        ("\"key\":value[,...]", no braces) spliced in after
 *        host_inst_rate — the bench harness adds its config
 *        fingerprint and iteration count this way.
 */
std::string simResultJson(const SimResult &r, const std::string &label,
                          const std::string &workload,
                          const std::string &extra = "");

/**
 * Build + profile + mark + run one configuration.
 *
 * The profiling pass always runs (it is cheap and deterministic) so
 * that Figure 6 style classification data is available even for
 * baseline configurations; the core simply ignores markings when
 * predication is off.
 */
SimResult runSim(const SimConfig &cfg);

/**
 * Timing-run only: execute `cfg.core` over an already marked ref
 * program. `ref` is read-only (shareable across concurrent runs); the
 * report is copied into the result. runSim(cfg) is exactly
 * runSimOnProgram(prepareMarkedProgram(cfg)..., cfg).
 */
SimResult runSimOnProgram(const isa::Program &ref,
                          const profile::MarkingReport &report,
                          const SimConfig &cfg);

/**
 * Mark `train` in place according to cfg.markMode: profile-and-mark
 * (Profile), static synthesis (Static), or clear (None). Shared by
 * prepareMarkedProgram and the batch profile cache. For Static, pass
 * the program that will actually run — synthesis leans on a value
 * analysis whose proofs are exact only for the analyzed image, and
 * the workload generators bake the data seed into code immediates.
 */
profile::MarkingReport markTrainProgram(isa::Program &train,
                                        const SimConfig &cfg);

/**
 * Marking only: returns the marked ref program and the marking report
 * (used by benches that need the program itself). Profile mode marks
 * the train build and transfers by PC; Static synthesizes directly on
 * the ref build (see markTrainProgram).
 */
std::pair<isa::Program, profile::MarkingReport>
prepareMarkedProgram(const SimConfig &cfg);

/** Percentage helper: 100 * (a - b) / b. */
double pctDelta(double a, double b);

} // namespace dmp::sim

#endif // DMP_SIM_SIMULATOR_HH
