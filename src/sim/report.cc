#include "sim/report.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"

namespace dmp::sim
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

std::string
fmtDouble(double v, const char *spec = "%.3f")
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

std::string
fmtU64(std::uint64_t v)
{
    return std::to_string(v);
}

std::uint64_t
memberU64(const json::Value &obj, const char *key)
{
    const json::Value *v = obj.get(key);
    return v ? v->asU64() : 0;
}

} // namespace

std::uint64_t
StatsRecord::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

bool
parseStatsRecord(const std::string &line, StatsRecord &out, std::string &err)
{
    out = StatsRecord{};
    json::Value doc;
    if (!json::parse(line, doc, err))
        return false;
    if (!doc.isObject()) {
        err = "record is not a JSON object";
        return false;
    }

    if (const json::Value *v = doc.get("schema"))
        out.schema = int(v->asU64());
    if (const json::Value *v = doc.get("label"); v && v->isString())
        out.label = v->string;
    if (const json::Value *v = doc.get("workload"); v && v->isString())
        out.workload = v->string;
    if (const json::Value *v = doc.get("ipc"))
        out.ipc = v->asDouble();
    out.cycles = memberU64(doc, "cycles");
    out.retiredInsts = memberU64(doc, "retired_insts");

    if (const json::Value *c = doc.get("counters"); c && c->isObject()) {
        for (const auto &[k, v] : c->object)
            out.counters.emplace(k, v.asU64());
    }
    if (const json::Value *f = doc.get("formulas"); f && f->isObject()) {
        for (const auto &[k, v] : f->object)
            out.formulas.emplace(k, v.asDouble());
    }

    const json::Value *acct = doc.get("accounting");
    if (acct && acct->isObject()) {
        out.hasAccounting = true;
        if (const json::Value *b = acct->get("buckets"); b && b->isObject())
            for (const auto &[k, v] : b->object)
                out.buckets.emplace_back(k, v.asU64());
        if (const json::Value *br = acct->get("branches");
            br && br->isArray()) {
            for (const json::Value &row : br->array) {
                if (!row.isObject())
                    continue;
                ReportBranchRow r;
                if (const json::Value *pc = row.get("pc");
                    pc && pc->isString())
                    r.pc = pc->string;
                r.episodes = memberU64(row, "episodes");
                r.dualEpisodes = memberU64(row, "dual_episodes");
                r.mergedAtCfm = memberU64(row, "merged_at_cfm");
                r.overshot = memberU64(row, "overshot");
                r.earlyExits = memberU64(row, "early_exits");
                r.converted = memberU64(row, "converted");
                r.squashed = memberU64(row, "squashed");
                r.fetchedInsts = memberU64(row, "fetched_insts");
                r.falseInsts = memberU64(row, "false_insts");
                r.extraUops = memberU64(row, "extra_uops");
                r.flushesAvoided = memberU64(row, "flushes_avoided");
                r.flushes = memberU64(row, "flushes");
                if (const json::Value *nc = row.get("net_cycles"))
                    r.netCycles = nc->asDouble();
                out.branches.push_back(std::move(r));
            }
        }
    }
    return true;
}

bool
loadStatsJsonl(const std::string &path, std::vector<StatsRecord> &out,
               std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        StatsRecord rec;
        std::string rec_err;
        if (!parseStatsRecord(line, rec, rec_err)) {
            err = path + ":" + std::to_string(lineno) + ": " + rec_err;
            return false;
        }
        out.push_back(std::move(rec));
    }
    return true;
}

const StatsRecord *
findRecord(const std::vector<StatsRecord> &records,
           const std::string &label, const std::string &workload)
{
    for (const StatsRecord &r : records)
        if (r.label == label && r.workload == workload)
            return &r;
    return nullptr;
}

bool
parseReportFormat(const std::string &name, ReportFormat &out)
{
    if (name == "text")
        out = ReportFormat::Text;
    else if (name == "json")
        out = ReportFormat::Json;
    else if (name == "md" || name == "markdown")
        out = ReportFormat::Markdown;
    else
        return false;
    return true;
}

std::string
ReportTable::render(ReportFormat f) const
{
    std::ostringstream os;
    if (f == ReportFormat::Json) {
        os << "{\"title\":\"" << jsonEscape(title) << "\",\"header\":[";
        for (std::size_t i = 0; i < header.size(); ++i)
            os << (i ? "," : "") << '"' << jsonEscape(header[i]) << '"';
        os << "],\"rows\":[";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            os << (i ? "," : "") << '[';
            for (std::size_t j = 0; j < rows[i].size(); ++j)
                os << (j ? "," : "") << '"' << jsonEscape(rows[i][j])
                   << '"';
            os << ']';
        }
        os << "]}";
        return os.str();
    }

    if (f == ReportFormat::Markdown) {
        os << "### " << title << "\n\n|";
        for (const std::string &h : header)
            os << ' ' << h << " |";
        os << "\n|";
        for (std::size_t i = 0; i < header.size(); ++i)
            os << (i ? " ---: |" : " :--- |");
        os << '\n';
        for (const auto &row : rows) {
            os << '|';
            for (const std::string &cell : row)
                os << ' ' << cell << " |";
            os << '\n';
        }
        return os.str();
    }

    // Text: first column left-aligned, the rest right-aligned.
    std::vector<std::size_t> width(header.size());
    for (std::size_t i = 0; i < header.size(); ++i)
        width[i] = header[i].size();
    for (const auto &row : rows)
        for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            const std::string &cell = row[i];
            std::size_t pad = width[i] > cell.size()
                ? width[i] - cell.size() : 0;
            if (i == 0) {
                os << cell << std::string(pad, ' ');
            } else {
                os << "  " << std::string(pad, ' ') << cell;
            }
        }
        os << '\n';
    };
    os << "=== " << title << " ===\n";
    emitRow(header);
    for (const auto &row : rows)
        emitRow(row);
    return os.str();
}

std::string
renderTables(const std::vector<ReportTable> &tables, ReportFormat f)
{
    std::ostringstream os;
    if (f == ReportFormat::Json) {
        os << '[';
        for (std::size_t i = 0; i < tables.size(); ++i)
            os << (i ? "," : "") << tables[i].render(f);
        os << "]\n";
        return os.str();
    }
    for (std::size_t i = 0; i < tables.size(); ++i) {
        if (i)
            os << '\n';
        os << tables[i].render(f);
    }
    return os.str();
}

ReportTable
summaryTable(const std::vector<StatsRecord> &records)
{
    ReportTable t;
    t.title = "runs";
    t.header = {"label", "workload", "IPC", "cycles",
                "retired", "flushes", "MPKI"};
    for (const StatsRecord &r : records) {
        auto mpki = r.formulas.find("mispred_per_kilo_insts");
        t.rows.push_back(
            {r.label, r.workload, fmtDouble(r.ipc), fmtU64(r.cycles),
             fmtU64(r.retiredInsts),
             fmtU64(r.counter("pipeline_flushes")),
             mpki == r.formulas.end() ? "-" : fmtDouble(mpki->second,
                                                        "%.2f")});
    }
    return t;
}

ReportTable
topdownTable(const std::vector<StatsRecord> &records)
{
    ReportTable t;
    t.title = "top-down cycle breakdown (% of cycles)";
    // Column set = bucket order of the first accounting record.
    for (const StatsRecord &r : records) {
        if (!r.hasAccounting)
            continue;
        t.header = {"label", "workload", "cycles"};
        for (const auto &[name, cycles] : r.buckets)
            t.header.push_back(name);
        break;
    }
    if (t.header.empty()) {
        t.header = {"label", "workload", "cycles"};
        return t;
    }
    for (const StatsRecord &r : records) {
        if (!r.hasAccounting)
            continue;
        std::vector<std::string> row = {r.label, r.workload,
                                        fmtU64(r.cycles)};
        std::uint64_t total = 0;
        for (const auto &[name, cycles] : r.buckets)
            total += cycles;
        for (std::size_t i = 3; i < t.header.size(); ++i) {
            std::uint64_t c = 0;
            for (const auto &[name, cycles] : r.buckets)
                if (name == t.header[i])
                    c = cycles;
            double pct = total ? 100.0 * double(c) / double(total) : 0.0;
            row.push_back(fmtDouble(pct, "%.1f"));
        }
        t.rows.push_back(std::move(row));
    }
    return t;
}

ReportTable
diffTable(const std::vector<StatsRecord> &records,
          const std::string &label_a, const std::string &label_b)
{
    ReportTable t;
    t.title = label_b + " vs " + label_a;
    t.header = {"workload",       "IPC " + label_a, "IPC " + label_b,
                "IPC delta %",    "flushes " + label_a,
                "flushes " + label_b, "flush red. %"};
    double ipc_sum = 0, red_sum = 0;
    unsigned n = 0;
    for (const StatsRecord &ra : records) {
        if (ra.label != label_a)
            continue;
        const StatsRecord *rb = findRecord(records, label_b, ra.workload);
        if (!rb)
            continue;
        std::uint64_t fa = ra.counter("pipeline_flushes");
        std::uint64_t fb = rb->counter("pipeline_flushes");
        double ipc_delta =
            ra.ipc ? 100.0 * (rb->ipc - ra.ipc) / ra.ipc : 0.0;
        double red = flushReductionPct(fa, fb);
        t.rows.push_back({ra.workload, fmtDouble(ra.ipc),
                          fmtDouble(rb->ipc), fmtDouble(ipc_delta, "%.1f"),
                          fmtU64(fa), fmtU64(fb),
                          fmtDouble(red, "%.1f")});
        ipc_sum += ipc_delta;
        red_sum += red;
        ++n;
    }
    if (n) {
        t.rows.push_back({"average", "-", "-",
                          fmtDouble(ipc_sum / n, "%.1f"), "-", "-",
                          fmtDouble(red_sum / n, "%.1f")});
    }
    return t;
}

ReportTable
branchTable(const std::vector<StatsRecord> &records, std::size_t top_n)
{
    ReportTable t;
    t.title = "diverge branches by net benefit";
    t.header = {"workload", "label",      "pc",         "episodes",
                "mergedCFM", "overshot",  "flushAvoid", "flushes",
                "falseInsts", "uops",     "netCycles"};
    struct Item
    {
        const StatsRecord *rec;
        const ReportBranchRow *row;
    };
    std::vector<Item> items;
    for (const StatsRecord &r : records) {
        for (const ReportBranchRow &b : r.branches)
            if (b.episodes + b.dualEpisodes > 0)
                items.push_back({&r, &b});
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const Item &a, const Item &b) {
                         return a.row->netCycles > b.row->netCycles;
                     });
    if (top_n && items.size() > top_n)
        items.resize(top_n);
    for (const Item &it : items) {
        const ReportBranchRow &b = *it.row;
        t.rows.push_back(
            {it.rec->workload, it.rec->label, b.pc,
             fmtU64(b.episodes + b.dualEpisodes), fmtU64(b.mergedAtCfm),
             fmtU64(b.overshot), fmtU64(b.flushesAvoided),
             fmtU64(b.flushes), fmtU64(b.falseInsts), fmtU64(b.extraUops),
             fmtDouble(b.netCycles, "%.1f")});
    }
    return t;
}

ReportTable
flushReductionTable(const std::vector<StatsRecord> &records,
                    const std::string &base_label,
                    const std::string &enh_label)
{
    ReportTable t;
    t.title = "pipeline-flush reduction: " + enh_label + " vs " +
              base_label + " (Fig. 11)";
    t.header = {"workload", base_label, enh_label, "reduction %"};
    double sum = 0;
    unsigned n = 0;
    for (const StatsRecord &r : records) {
        if (r.label != base_label)
            continue;
        const StatsRecord *enh = findRecord(records, enh_label,
                                            r.workload);
        if (!enh)
            continue;
        std::uint64_t base_f = r.counter("pipeline_flushes");
        std::uint64_t enh_f = enh->counter("pipeline_flushes");
        double red = flushReductionPct(base_f, enh_f);
        t.rows.push_back({r.workload, fmtU64(base_f), fmtU64(enh_f),
                          fmtDouble(red, "%.1f")});
        sum += red;
        ++n;
    }
    if (n)
        t.rows.push_back({"average", "-", "-",
                          fmtDouble(sum / n, "%.1f")});
    return t;
}

double
flushReductionPct(std::uint64_t base, std::uint64_t enh)
{
    return base ? 100.0 * (double(base) - double(enh)) / double(base)
                : 0.0;
}

bool
loadMarkingsTable(const std::string &path, ReportTable &out,
                  std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    json::Value doc;
    if (!json::parse(text.str(), doc, err)) {
        err = path + ": " + err;
        return false;
    }
    const json::Value *targets = doc.get("targets");
    if (!doc.isObject() || !targets || !targets->isArray()) {
        err = path + ": not a dmp-mark JSON report "
              "(missing \"targets\" array)";
        return false;
    }

    out = ReportTable{};
    out.title = "static markings (dmp-mark vs profiled marker)";
    out.header = {"workload", "diverge", "hammock", "loop",
                  "dropped",  "lint E",  "lint W",  "profiled",
                  "common",   "prec",    "recall",  "cfm match"};
    double prec_sum = 0, recall_sum = 0, cfm_sum = 0;
    unsigned agreed = 0;
    for (const json::Value &t : targets->array) {
        if (!t.isObject())
            continue;
        const json::Value *name = t.get("target");
        std::vector<std::string> row;
        row.push_back(name && name->isString() ? name->string : "?");
        for (const char *k : {"diverge", "hammock", "loop", "dropped"}) {
            const json::Value *v = t.get("marks", k);
            row.push_back(fmtU64(v ? v->asU64() : 0));
        }
        for (const char *k : {"errors", "warnings"}) {
            const json::Value *v = t.get("lint", k);
            row.push_back(fmtU64(v ? v->asU64() : 0));
        }
        if (const json::Value *a = t.get("agreement"); a && a->isObject()) {
            row.push_back(fmtU64(memberU64(*a, "profile_diverge")));
            row.push_back(fmtU64(memberU64(*a, "common_diverge")));
            const json::Value *p = a->get("precision");
            const json::Value *r = a->get("recall");
            const json::Value *c = a->get("cfm_match_rate");
            double prec = p ? p->asDouble() : 0;
            double recall = r ? r->asDouble() : 0;
            double cfm = c ? c->asDouble() : 0;
            row.push_back(fmtDouble(prec, "%.2f"));
            row.push_back(fmtDouble(recall, "%.2f"));
            row.push_back(fmtDouble(cfm, "%.2f"));
            prec_sum += prec;
            recall_sum += recall;
            cfm_sum += cfm;
            ++agreed;
        } else {
            for (int i = 0; i < 5; ++i)
                row.push_back("-");
        }
        out.rows.push_back(std::move(row));
    }
    if (agreed) {
        out.rows.push_back({"mean", "-", "-", "-", "-", "-", "-", "-",
                            "-", fmtDouble(prec_sum / agreed, "%.2f"),
                            fmtDouble(recall_sum / agreed, "%.2f"),
                            fmtDouble(cfm_sum / agreed, "%.2f")});
    }
    return true;
}

bool
loadProofsTable(const std::string &path, ReportTable &out,
                std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    json::Value doc;
    if (!json::parse(text.str(), doc, err)) {
        err = path + ": " + err;
        return false;
    }
    const json::Value *targets = doc.get("targets");
    if (!doc.isObject() || !targets || !targets->isArray()) {
        err = path + ": not a dmp-lint JSON report "
              "(missing \"targets\" array)";
        return false;
    }

    out = ReportTable{};
    out.title = "absint proofs (dmp-lint --deep)";
    out.header = {"workload", "insts",   "unreach", "branches",
                  "taken",    "untaken", "trip",    "ind ok",
                  "ind ?",    "iters",   "status"};
    std::uint64_t branch_sum = 0, proved_sum = 0;
    for (const json::Value &t : targets->array) {
        if (!t.isObject())
            continue;
        const json::Value *name = t.get("target");
        std::vector<std::string> row;
        row.push_back(name && name->isString() ? name->string : "?");
        const json::Value *a = t.get("absint");
        if (!a || !a->isObject()) {
            // Linted without --deep: keep the row so the table still
            // covers every target, but show no proof columns.
            for (int i = 0; i < 9; ++i)
                row.push_back("-");
            row.push_back("no absint");
            out.rows.push_back(std::move(row));
            continue;
        }
        const json::Value *ran = a->get("ran");
        const json::Value *smeared = a->get("smeared");
        std::uint64_t branches = memberU64(*a, "branches");
        std::uint64_t proved = memberU64(*a, "proved_taken") +
                               memberU64(*a, "proved_not_taken");
        for (const char *k :
             {"insts", "unreachable", "branches", "proved_taken",
              "proved_not_taken", "trip_bounded", "indirect_resolved",
              "indirect_unresolved", "iterations"})
            row.push_back(fmtU64(memberU64(*a, k)));
        if (ran && ran->kind == json::Value::Kind::Bool && !ran->boolean)
            row.push_back("declined");
        else if (smeared && smeared->kind == json::Value::Kind::Bool &&
                 smeared->boolean)
            row.push_back("smeared");
        else
            row.push_back("exact");
        branch_sum += branches;
        proved_sum += proved;
        out.rows.push_back(std::move(row));
    }
    if (branch_sum) {
        double pct = 100.0 * double(proved_sum) / double(branch_sum);
        out.rows.push_back({"total", "-", "-", fmtU64(branch_sum), "-",
                            "-", "-", "-", "-", "-",
                            fmtDouble(pct, "%.1f") + "% proved"});
    }
    return true;
}

} // namespace dmp::sim
