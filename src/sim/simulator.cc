#include "sim/simulator.hh"

#include "common/logging.hh"

namespace dmp::sim
{

std::pair<isa::Program, profile::MarkingReport>
prepareMarkedProgram(const SimConfig &cfg)
{
    isa::Program train =
        workloads::buildWorkload(cfg.workload, cfg.train);
    profile::MarkingReport report = profile::profileAndMark(
        train, cfg.core.memoryBytes, cfg.marker);

    isa::Program ref = workloads::buildWorkload(cfg.workload, cfg.ref);
    profile::transferMarks(train, ref);
    return {std::move(ref), std::move(report)};
}

SimResult
runSim(const SimConfig &cfg)
{
    auto [ref, report] = prepareMarkedProgram(cfg);

    core::Core machine(ref, cfg.core);
    machine.run(cfg.maxInsts ? cfg.maxInsts : ~0ULL,
                cfg.maxCycles ? cfg.maxCycles : ~0ULL);

    SimResult r;
    r.marking = std::move(report);
    const core::CoreStats &st = machine.stats();
    r.cycles = st.cycles.value();
    r.retiredInsts = st.retiredInsts.value();
    r.ipc = r.cycles ? double(r.retiredInsts) / double(r.cycles) : 0.0;
    for (const std::string &name : st.group.names())
        r.counters[name] = st.group.get(name);
    return r;
}

double
pctDelta(double a, double b)
{
    return b == 0 ? 0 : 100.0 * (a - b) / b;
}

} // namespace dmp::sim
