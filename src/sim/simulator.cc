#include "sim/simulator.hh"

#include <vector>

#include "common/logging.hh"

namespace dmp::sim
{

std::pair<isa::Program, profile::MarkingReport>
prepareMarkedProgram(const SimConfig &cfg)
{
    isa::Program train =
        workloads::buildWorkload(cfg.workload, cfg.train);
    profile::MarkingReport report = profile::profileAndMark(
        train, cfg.core.memoryBytes, cfg.marker);

    isa::Program ref = workloads::buildWorkload(cfg.workload, cfg.ref);
    profile::transferMarks(train, ref);
    return {std::move(ref), std::move(report)};
}

SimResult
runSimOnProgram(const isa::Program &ref,
                const profile::MarkingReport &report, const SimConfig &cfg)
{
    core::Core machine(ref, cfg.core);
    machine.run(cfg.maxInsts ? cfg.maxInsts : ~0ULL,
                cfg.maxCycles ? cfg.maxCycles : ~0ULL);

    SimResult r;
    r.marking = report;
    const core::CoreStats &st = machine.stats();
    r.cycles = st.cycles.value();
    r.retiredInsts = st.retiredInsts.value();
    r.ipc = r.cycles ? double(r.retiredInsts) / double(r.cycles) : 0.0;
    std::vector<std::string> names = st.group.names();
    r.counters.reserve(names.size());
    for (const std::string &name : names)
        r.counters.emplace(name, st.group.get(name));
    return r;
}

SimResult
runSim(const SimConfig &cfg)
{
    auto [ref, report] = prepareMarkedProgram(cfg);
    return runSimOnProgram(ref, report, cfg);
}

double
pctDelta(double a, double b)
{
    return b == 0 ? 0 : 100.0 * (a - b) / b;
}

} // namespace dmp::sim
