#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <vector>

#include "analysis/accounting.hh"
#include "analysis/markgen.hh"
#include "common/logging.hh"

namespace dmp::sim
{

const char *
markModeName(MarkMode m)
{
    switch (m) {
    case MarkMode::Profile: return "profile";
    case MarkMode::Static:  return "static";
    case MarkMode::None:    return "none";
    }
    return "profile";
}

bool
parseMarkMode(const std::string &name, MarkMode &out)
{
    if (name == "profile") {
        out = MarkMode::Profile;
    } else if (name == "static") {
        out = MarkMode::Static;
    } else if (name == "none") {
        out = MarkMode::None;
    } else {
        return false;
    }
    return true;
}

std::uint64_t
SimResult::get(const std::string &name) const
{
    auto it = counters.find(name);
    if (it == counters.end()) {
        dmp_warn_once("SimResult::get: unknown counter \"", name,
                      "\" (returning 0; use require() to make this fatal)");
        return 0;
    }
    return it->second;
}

std::uint64_t
SimResult::require(const std::string &name) const
{
    auto it = counters.find(name);
    if (it == counters.end())
        dmp_fatal("SimResult::require: unknown counter \"", name, "\"");
    return it->second;
}

const DistSnapshot *
SimResult::dist(const std::string &name) const
{
    auto it = distributions.find(name);
    return it == distributions.end() ? nullptr : &it->second;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
            break;
        }
    }
    return out;
}

void
appendNumber(std::ostringstream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

std::string
simResultJson(const SimResult &r, const std::string &label,
              const std::string &workload, const std::string &extra)
{
    std::ostringstream os;
    os.precision(12);
    os << "{\"schema\":" << kStatsSchemaVersion;
    os << ",\"label\":\"" << jsonEscape(label) << "\"";
    os << ",\"workload\":\"" << jsonEscape(workload) << "\"";
    os << ",\"ipc\":";
    appendNumber(os, r.ipc);
    os << ",\"cycles\":" << r.cycles;
    os << ",\"retired_insts\":" << r.retiredInsts;
    os << ",\"host_seconds\":";
    appendNumber(os, r.hostSeconds);
    os << ",\"host_inst_rate\":";
    appendNumber(os, r.hostInstRate);
    if (!extra.empty())
        os << ',' << extra;

    // Sort names so records diff cleanly across runs.
    auto sortedKeys = [](const auto &m) {
        std::vector<std::string> keys;
        keys.reserve(m.size());
        for (const auto &kv : m)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        return keys;
    };

    os << ",\"counters\":{";
    bool first = true;
    for (const std::string &k : sortedKeys(r.counters)) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k)
           << "\":" << r.counters.at(k);
        first = false;
    }
    os << "},\"distributions\":{";
    first = true;
    for (const std::string &k : sortedKeys(r.distributions)) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k)
           << "\":" << distSnapshotJson(r.distributions.at(k));
        first = false;
    }
    os << "},\"formulas\":{";
    first = true;
    for (const std::string &k : sortedKeys(r.formulas)) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k) << "\":";
        appendNumber(os, r.formulas.at(k));
        first = false;
    }
    os << "}";
    if (r.hasAccounting)
        os << ",\"accounting\":" << r.accountingJson;
    os << "}";
    return os.str();
}

profile::MarkingReport
markTrainProgram(isa::Program &train, const SimConfig &cfg)
{
    switch (cfg.markMode) {
    case MarkMode::Profile:
        return profile::profileAndMark(train, cfg.core.memoryBytes,
                                       cfg.marker);
    case MarkMode::Static: {
        // No training run: synthesize from the program text. The cost
        // model deliberately uses fixed Table 2 constants rather than
        // cfg.core — the marking must not vary across core sweeps
        // (profileFingerprint excludes core knobs).
        analysis::MarkGenConfig mg;
        mg.marker = cfg.marker;
        analysis::MarkGenReport mr = analysis::synthesizeMarks(train, mg);
        profile::MarkingReport report;
        report.candidateBranches = mr.candidates.size();
        report.markedDiverge = mr.markedDiverge;
        report.markedSimpleHammock = mr.markedSimpleHammock;
        report.markedLoop = mr.markedLoop;
        return report;
    }
    case MarkMode::None:
        train.clearMarks();
        return {};
    }
    dmp_fatal("unknown mark mode");
}

std::pair<isa::Program, profile::MarkingReport>
prepareMarkedProgram(const SimConfig &cfg)
{
    isa::Program ref = workloads::buildWorkload(cfg.workload, cfg.ref);

    // Static synthesis needs no training run, so it marks the binary
    // that actually executes. The train build's data seed also varies
    // code immediates, and the value analysis behind the synthesis
    // proves facts that are exact only for the image it analyzed —
    // marks transferred from the train build could embed train-only
    // "proofs" (a branch one-sided under the train constants only).
    if (cfg.markMode == MarkMode::Static) {
        profile::MarkingReport report = markTrainProgram(ref, cfg);
        return {std::move(ref), std::move(report)};
    }

    isa::Program train =
        workloads::buildWorkload(cfg.workload, cfg.train);
    profile::MarkingReport report = markTrainProgram(train, cfg);
    profile::transferMarks(train, ref);
    return {std::move(ref), std::move(report)};
}

SimResult
runSimOnProgram(const isa::Program &ref,
                const profile::MarkingReport &report, const SimConfig &cfg)
{
    core::Core machine(ref, cfg.core);

    std::unique_ptr<check::CoreChecker> checker;
    if (cfg.selfcheck != check::Mode::Off) {
        if (!check::buildEnabled()) {
            dmp_fatal("selfcheck requested but this binary was built "
                      "with DMP_SELFCHECK_BUILD=OFF");
        }
        check::CheckerOptions copt;
        copt.mode = cfg.selfcheck;
        checker = std::make_unique<check::CoreChecker>(ref, machine, copt);
        if (cfg.faultPlan)
            checker->injectFault(*cfg.faultPlan);
        machine.setSelfCheck(checker.get());
    }

    std::unique_ptr<analysis::CycleAccounting> acct;
    if (cfg.accounting) {
        if (!trace::tracingCompiledIn()) {
            dmp_fatal("accounting requested but this binary was built "
                      "with DMP_TRACING=OFF (the probes are compiled "
                      "out)");
        }
        acct = std::make_unique<analysis::CycleAccounting>(
            cfg.core.frontendDepth, cfg.core.retireWidth);
        machine.setAccounting(acct.get());
    }

    auto host_start = std::chrono::steady_clock::now();
    machine.run(cfg.maxInsts ? cfg.maxInsts : ~0ULL,
                cfg.maxCycles ? cfg.maxCycles : ~0ULL);
    auto host_end = std::chrono::steady_clock::now();

    SimResult r;
    r.marking = report;
    const core::CoreStats &st = machine.stats();
    r.cycles = st.cycles.value();
    r.retiredInsts = st.retiredInsts.value();
    r.ipc = r.cycles ? double(r.retiredInsts) / double(r.cycles) : 0.0;
    r.hostSeconds =
        std::chrono::duration<double>(host_end - host_start).count();
    r.hostInstRate =
        r.hostSeconds > 0 ? double(r.retiredInsts) / r.hostSeconds : 0.0;
    std::vector<std::string> names = st.group.names();
    r.counters.reserve(names.size());
    for (const std::string &name : names)
        r.counters.emplace(name, st.group.get(name));
    for (const std::string &name : st.group.distributionNames())
        r.distributions.emplace(name,
                                st.group.distribution(name).snapshot());
    for (const std::string &name : st.group.formulaNames())
        r.formulas.emplace(name, st.group.formula(name));
    if (acct) {
        acct->finish();
        const StatGroup &ag = acct->stats();
        for (const std::string &name : ag.names())
            r.counters.emplace("acct_" + name, ag.get(name));
        r.hasAccounting = true;
        r.accountingJson = acct->json();
    }
    return r;
}

SimResult
runSim(const SimConfig &cfg)
{
    auto [ref, report] = prepareMarkedProgram(cfg);
    return runSimOnProgram(ref, report, cfg);
}

double
pctDelta(double a, double b)
{
    return b == 0 ? 0 : 100.0 * (a - b) / b;
}

} // namespace dmp::sim
