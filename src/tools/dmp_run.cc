/**
 * @file
 * dmp-run — command-line driver for the diverge-merge simulator.
 *
 * Runs one workload (or an assembly file) through a chosen machine
 * configuration and prints the full statistics dump.
 *
 *   dmp-run [options] <workload-name | file.s>
 *
 *   --mode=base|dhp|dmp|dmp-enhanced|dual   machine mode
 *   --sweep=m1,m2,...    run several machine modes in parallel and
 *                        print a comparison table ("all" = every mode)
 *   --jobs=N             worker threads for --sweep (default: all
 *                        cores, or DMP_BENCH_JOBS)
 *   --iters=N            workload loop iterations (default 2000)
 *   --seed=N             data seed of the measured run
 *   --rob=N              reorder buffer size
 *   --depth=N            front-end depth (min. mispredict penalty)
 *   --width=N            fetch/issue/retire width
 *   --predictor=perceptron|gshare|bimodal|hybrid
 *   --perfect-cbp        perfect conditional branch prediction
 *   --perfect-conf       perfect confidence estimation
 *   --loop-ext           diverge loop branches (section 2.7.4)
 *   --mark=MODE          marking source for the measured program:
 *                        profile (train-run profiler, the paper's
 *                        flow; default), static (profile-free
 *                        synthesis, see dmp-mark), none (unmarked)
 *   --verify             statically verify the marked program before
 *                        simulating (error findings abort the run;
 *                        see dmp-lint for the standalone checker)
 *   --selfcheck[=MODE]   run under the microarchitectural self-checker
 *                        (MODE: all | invariants | lockstep | off;
 *                        bare --selfcheck = all). Also: DMP_SELFCHECK
 *                        env. Requires a DMP_SELFCHECK_BUILD=ON build;
 *                        the first broken invariant or architectural
 *                        divergence aborts with a diagnosis and exit 1
 *   --selfcheck-json=PATH  write the self-check outcome (schema 1,
 *                        see EXPERIMENTS.md) to PATH
 *   --list               list workloads and exit
 *   --marks              print the marked-program listing and exit
 *
 * Observability:
 *   --debug-flags=F1,F2  enable named trace flags (also: DMP_DEBUG env;
 *                        "all" enables everything)
 *   --list-debug-flags   print the flag table and exit
 *   --trace-file=PATH    write trace records to PATH instead of stderr
 *   --pipeview=PATH      write a Konata/O3PipeView pipeline trace
 *   --stats-json=PATH    append one JSONL stats record per run to PATH
 *   --accounting         attach the top-down cycle-accounting sink:
 *                        prints the bucket breakdown and per-branch
 *                        diverge analytics, and embeds the accounting
 *                        block in --stats-json records. Requires a
 *                        build with DMP_TRACING=ON (the default)
 *   --perfetto=PATH      write a Chrome/Perfetto trace-event JSON file
 *                        (top-down slices, episode async spans, flush
 *                        instants; implies --accounting; single-run
 *                        only)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <vector>

#include <memory>

#include "analysis/accounting.hh"
#include "analysis/analysis.hh"
#include "check/checker.hh"
#include "common/trace.hh"
#include "core/core.hh"
#include "isa/assembler.hh"
#include "profile/profiler.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dmp;

namespace
{

struct Options
{
    std::string target;
    std::string mode = "dmp-enhanced";
    std::string sweep;
    unsigned jobs = 0; // 0: BatchRunner default
    std::uint64_t iters = 2000;
    std::uint64_t seed = 0x4ef;
    unsigned rob = 0;
    unsigned depth = 0;
    unsigned width = 0;
    std::string predictor;
    bool perfectCbp = false;
    bool perfectConf = false;
    bool loopExt = false;
    sim::MarkMode markMode = sim::MarkMode::Profile;
    bool verify = false;
    check::Mode selfcheck = check::Mode::Off;
    bool selfcheckGiven = false;
    std::string selfcheckJsonPath;
    bool list = false;
    bool marks = false;
    std::string debugFlags;
    std::string traceFile;
    std::string pipeview;
    std::string statsJson;
    bool accounting = false;
    std::string perfetto;
    bool listDebugFlags = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr, "usage: dmp-run [options] <workload|file.s>\n"
                         "see the file header or README for options\n");
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char *a = argv[i];
        if (flagValue(a, "--mode", v))
            o.mode = v;
        else if (flagValue(a, "--sweep", v)) {
            if (v.empty())
                dmp_fatal("--sweep: no modes given");
            o.sweep = v;
        }
        else if (flagValue(a, "--jobs", v))
            o.jobs = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--iters", v))
            o.iters = std::strtoull(v.c_str(), nullptr, 0);
        else if (flagValue(a, "--seed", v))
            o.seed = std::strtoull(v.c_str(), nullptr, 0);
        else if (flagValue(a, "--rob", v))
            o.rob = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--depth", v))
            o.depth = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--width", v))
            o.width = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--predictor", v))
            o.predictor = v;
        else if (std::strcmp(a, "--perfect-cbp") == 0)
            o.perfectCbp = true;
        else if (std::strcmp(a, "--perfect-conf") == 0)
            o.perfectConf = true;
        else if (std::strcmp(a, "--loop-ext") == 0)
            o.loopExt = true;
        else if (flagValue(a, "--mark", v)) {
            if (!sim::parseMarkMode(v, o.markMode))
                dmp_fatal("--mark: unknown mode: ", v);
        }
        else if (std::strcmp(a, "--verify") == 0)
            o.verify = true;
        else if (std::strcmp(a, "--selfcheck") == 0 ||
                 flagValue(a, "--selfcheck", v)) {
            if (!check::parseMode(v, o.selfcheck))
                dmp_fatal("--selfcheck: unknown mode: ", v);
            o.selfcheckGiven = true;
        }
        else if (flagValue(a, "--selfcheck-json", v))
            o.selfcheckJsonPath = v;
        else if (std::strcmp(a, "--list") == 0)
            o.list = true;
        else if (std::strcmp(a, "--marks") == 0)
            o.marks = true;
        else if (flagValue(a, "--debug-flags", v))
            o.debugFlags = v;
        else if (flagValue(a, "--trace-file", v))
            o.traceFile = v;
        else if (flagValue(a, "--pipeview", v))
            o.pipeview = v;
        else if (flagValue(a, "--stats-json", v))
            o.statsJson = v;
        else if (std::strcmp(a, "--accounting") == 0)
            o.accounting = true;
        else if (flagValue(a, "--perfetto", v)) {
            o.perfetto = v;
            o.accounting = true;
        }
        else if (std::strcmp(a, "--list-debug-flags") == 0)
            o.listDebugFlags = true;
        else if (a[0] == '-')
            usage();
        else if (o.target.empty())
            o.target = a;
        else
            usage();
    }
    return o;
}

core::CoreParams
machineFor(const Options &o, const std::string &mode)
{
    core::CoreParams p;
    if (mode == "base") {
    } else if (mode == "dhp") {
        p.predication = core::PredicationScope::SimpleHammock;
    } else if (mode == "dmp") {
        p.predication = core::PredicationScope::Diverge;
    } else if (mode == "dmp-enhanced") {
        p.predication = core::PredicationScope::Diverge;
        p.enhMultiCfm = true;
        p.enhEarlyExit = true;
        p.enhMultiDiverge = true;
    } else if (mode == "dual") {
        p.mode = core::CoreMode::DualPath;
    } else {
        dmp_fatal("unknown machine mode: ", mode);
    }
    if (o.rob)
        p.robSize = o.rob;
    if (o.depth)
        p.frontendDepth = o.depth;
    if (o.width) {
        p.fetchWidth = o.width;
        p.issueWidth = o.width;
        p.retireWidth = o.width;
    }
    if (!o.predictor.empty()) {
        if (o.predictor == "perceptron")
            p.predictor = core::PredictorKind::Perceptron;
        else if (o.predictor == "gshare")
            p.predictor = core::PredictorKind::Gshare;
        else if (o.predictor == "bimodal")
            p.predictor = core::PredictorKind::Bimodal;
        else if (o.predictor == "hybrid")
            p.predictor = core::PredictorKind::Hybrid;
        else
            dmp_fatal("unknown --predictor: ", o.predictor);
    }
    p.perfectCondPredictor = o.perfectCbp;
    p.perfectConfidence = o.perfectConf;
    p.extLoopBranches = o.loopExt;
    return p;
}

bool
isWorkload(const std::string &name)
{
    for (const auto &info : workloads::workloadList())
        if (info.name == name)
            return true;
    return false;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** Append one JSONL record to `path` (fatal if it cannot be opened). */
void
appendStatsJson(const std::string &path, const std::string &line)
{
    std::ofstream out(path, std::ios::app);
    if (!out)
        dmp_fatal("--stats-json: cannot open ", path);
    out << line << "\n";
}

/** Write the --selfcheck-json outcome record (overwrites `path`). */
void
writeSelfcheckJson(const std::string &path, const std::string &json)
{
    std::ofstream out(path);
    if (!out)
        dmp_fatal("--selfcheck-json: cannot open ", path);
    out << json << "\n";
}

/** Report a self-check failure on stderr (and optionally as JSON). */
void
reportCheckFailure(const Options &o, const check::CheckError &e,
                   std::uint64_t checked_commits)
{
    std::fputs(e.report().text().c_str(), stderr);
    std::fputs(e.diagnosis().c_str(), stderr);
    std::fputc('\n', stderr);
    if (!o.selfcheckJsonPath.empty()) {
        writeSelfcheckJson(
            o.selfcheckJsonPath,
            check::selfcheckJson(o.selfcheck, o.target, true,
                                 checked_commits, e.report(),
                                 e.diagnosis()));
    }
}

/**
 * --sweep: run the target workload through several machine modes on
 * the BatchRunner pool and print an IPC comparison. The profiling pass
 * is shared across all modes via the batch profile cache.
 */
int
runSweep(const Options &o)
{
    if (!isWorkload(o.target))
        dmp_fatal("--sweep needs a workload name, got: ", o.target);

    std::vector<std::string> modes =
        o.sweep == "all"
            ? std::vector<std::string>{"base", "dhp", "dmp",
                                       "dmp-enhanced", "dual"}
            : splitCommas(o.sweep);
    if (modes.empty())
        dmp_fatal("--sweep: no modes given");

    std::vector<sim::SimConfig> grid;
    grid.reserve(modes.size());
    for (const std::string &mode : modes) {
        sim::SimConfig cfg;
        cfg.workload = o.target;
        cfg.core = machineFor(o, mode);
        cfg.marker.markLoopBranches = o.loopExt;
        cfg.markMode = o.markMode;
        cfg.train.iterations = o.iters;
        cfg.train.seed = 0x7e41a;
        cfg.ref.iterations = o.iters;
        cfg.ref.seed = o.seed;
        cfg.selfcheck = o.selfcheck;
        cfg.accounting = o.accounting;
        grid.push_back(cfg);
    }

    sim::BatchRunner runner(o.jobs);
    std::vector<sim::SimResult> results;
    try {
        results = runner.run(grid);
    } catch (const check::CheckError &e) {
        reportCheckFailure(o, e, 0);
        return 1;
    }

    std::printf("=== %s: %zu modes on %u worker(s) ===\n",
                o.target.c_str(), modes.size(), runner.jobs());
    std::printf("%-14s %8s %12s %12s %10s\n", "mode", "IPC", "cycles",
                "retired", "flushes");
    for (std::size_t i = 0; i < modes.size(); ++i) {
        const sim::SimResult &r = results[i];
        std::printf("%-14s %8.3f %12llu %12llu %10llu\n",
                    modes[i].c_str(), r.ipc,
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.retiredInsts,
                    (unsigned long long)r.require("pipeline_flushes"));
        if (!o.statsJson.empty())
            appendStatsJson(o.statsJson,
                            sim::simResultJson(r, modes[i], o.target));
    }
    sim::BatchStats st = runner.stats();
    std::printf("profile passes: %llu (hits %llu), sims: %llu "
                "(%.2fs sim wall-clock)\n",
                (unsigned long long)st.profileRuns,
                (unsigned long long)st.profileHits,
                (unsigned long long)st.simRuns, st.simSeconds);
    if (o.selfcheck != check::Mode::Off) {
        std::printf("selfcheck: clean (mode=%s across %zu runs)\n",
                    check::modeName(o.selfcheck), grid.size());
        if (!o.selfcheckJsonPath.empty()) {
            writeSelfcheckJson(
                o.selfcheckJsonPath,
                check::selfcheckJson(o.selfcheck, o.target, false, 0,
                                     analysis::Report{}, ""));
        }
    }
    return 0;
}

int
runMain(int argc, char **argv)
{
    Options o = parse(argc, argv);

    if (o.listDebugFlags) {
        for (const trace::FlagInfo &fi : trace::flagTable())
            std::printf("%-10s %s\n", fi.name, fi.desc);
        return 0;
    }
    if (!o.debugFlags.empty())
        trace::enableFlags(o.debugFlags);
    if (!o.traceFile.empty())
        trace::setOutputFile(o.traceFile);

    if (o.list) {
        for (const auto &info : workloads::workloadList())
            std::printf("%-10s %s\n", info.name.c_str(),
                        info.summary.c_str());
        return 0;
    }
    if (o.target.empty())
        usage();

    if (!o.selfcheckGiven) {
        if (const char *env = std::getenv("DMP_SELFCHECK")) {
            if (!check::parseMode(env, o.selfcheck))
                dmp_fatal("DMP_SELFCHECK: unknown mode: ", env);
        }
    }
    if (o.selfcheck != check::Mode::Off && !check::buildEnabled()) {
        dmp_fatal("--selfcheck requires a build with "
                  "DMP_SELFCHECK_BUILD=ON (the release/performance "
                  "presets compile the hooks out)");
    }

    if (o.accounting && !trace::tracingCompiledIn()) {
        dmp_fatal("--accounting/--perfetto require a build with "
                  "DMP_TRACING=ON (the probes are compiled out here)");
    }
    if (!o.sweep.empty()) {
        if (!o.perfetto.empty())
            dmp_fatal("--perfetto is single-run only (the trace would "
                      "interleave sweep runs); drop --sweep");
        return runSweep(o);
    }

    core::CoreParams params = machineFor(o, o.mode);

    // Build or load the program. All three --mark modes flow through
    // sim::markTrainProgram so this path and the batch pool agree.
    sim::SimConfig mcfg;
    mcfg.core = params;
    mcfg.marker.markLoopBranches = o.loopExt;
    mcfg.markMode = o.markMode;

    isa::Program prog;
    profile::MarkingReport report;
    if (isWorkload(o.target)) {
        workloads::WorkloadParams ref;
        ref.iterations = o.iters;
        ref.seed = o.seed;
        prog = workloads::buildWorkload(o.target, ref);
        if (o.markMode == sim::MarkMode::Static) {
            // Static synthesis marks the binary that runs: the train
            // build's seeded immediates differ, so value-analysis
            // proofs made there need not hold here.
            report = sim::markTrainProgram(prog, mcfg);
        } else {
            workloads::WorkloadParams train;
            train.iterations = o.iters;
            train.seed = 0x7e41a;
            isa::Program tp = workloads::buildWorkload(o.target, train);
            report = sim::markTrainProgram(tp, mcfg);
            profile::transferMarks(tp, prog);
        }
    } else {
        std::ifstream in(o.target);
        if (!in)
            dmp_fatal("cannot open ", o.target);
        std::ostringstream text;
        text << in.rdbuf();
        prog = isa::assemble(text.str());
        report = sim::markTrainProgram(prog, mcfg);
    }

    if (o.marks) {
        std::fputs(prog.listing().c_str(), stdout);
        return 0;
    }

    if (o.verify) {
        analysis::AnalysisOptions ao;
        ao.marker.markLoopBranches = o.loopExt;
        ao.maxPredicateDepth = params.predRegisters;
        ao.memoryBytes = params.memoryBytes;
        analysis::Report vr = analysis::analyzeProgram(prog, ao);
        if (!vr.empty())
            std::fputs(vr.text().c_str(), stderr);
        if (!vr.clean())
            dmp_fatal("--verify: ", vr.errors(),
                      " error finding(s); not simulating");
        std::printf("verify: clean (%zu warning(s), %zu info(s))\n",
                    vr.warnings(), vr.infos());
    }

    std::printf("target=%s mode=%s mark=%s marked: %llu diverge, "
                "%llu hammock\n",
                o.target.c_str(), o.mode.c_str(),
                sim::markModeName(o.markMode),
                (unsigned long long)report.markedDiverge,
                (unsigned long long)report.markedSimpleHammock);

    core::Core machine(prog, params);
    std::unique_ptr<trace::PipeView> pv;
    if (!o.pipeview.empty()) {
        pv = std::make_unique<trace::PipeView>(o.pipeview);
        machine.setPipeView(pv.get());
    }
    std::unique_ptr<check::CoreChecker> checker;
    if (o.selfcheck != check::Mode::Off) {
        check::CheckerOptions copt;
        copt.mode = o.selfcheck;
        checker = std::make_unique<check::CoreChecker>(prog, machine, copt);
        machine.setSelfCheck(checker.get());
    }
    std::unique_ptr<analysis::CycleAccounting> acct;
    std::unique_ptr<trace::TraceEventWriter> perfetto;
    if (o.accounting) {
        acct = std::make_unique<analysis::CycleAccounting>(
            params.frontendDepth, params.retireWidth);
        if (!o.perfetto.empty()) {
            perfetto =
                std::make_unique<trace::TraceEventWriter>(o.perfetto);
            acct->attachTrace(perfetto.get());
        }
        machine.setAccounting(acct.get());
    }
    auto host_start = std::chrono::steady_clock::now();
    try {
        machine.run();
    } catch (const check::CheckError &e) {
        reportCheckFailure(o, e,
                           checker ? checker->checkedCommits() : 0);
        return 1;
    }
    double host_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - host_start)
                              .count();

    if (checker) {
        std::printf("selfcheck: clean (mode=%s, %llu commits "
                    "cross-checked, %llu invariant passes)\n",
                    check::modeName(o.selfcheck),
                    (unsigned long long)checker->checkedCommits(),
                    (unsigned long long)checker->invariantPasses());
        if (!o.selfcheckJsonPath.empty()) {
            writeSelfcheckJson(
                o.selfcheckJsonPath,
                check::selfcheckJson(o.selfcheck, o.target, false,
                                     checker->checkedCommits(),
                                     analysis::Report{}, ""));
        }
    }

    const core::CoreStats &st = machine.stats();
    double ipc = st.cycles.value()
                     ? double(st.retiredInsts.value()) /
                           double(st.cycles.value())
                     : 0.0;
    std::printf("IPC %.3f over %llu cycles\n\n", ipc,
                (unsigned long long)st.cycles.value());
    std::fputs(st.group.dump().c_str(), stdout);
    if (pv)
        std::printf("pipeview: %llu records -> %s\n",
                    (unsigned long long)pv->count(), o.pipeview.c_str());
    if (acct) {
        acct->finish();
        std::fputs(acct->summary().c_str(), stdout);
    }
    if (perfetto) {
        perfetto->close();
        std::printf("perfetto: %llu events -> %s\n",
                    (unsigned long long)perfetto->count(),
                    o.perfetto.c_str());
    }

    if (!o.statsJson.empty()) {
        sim::SimResult r;
        r.cycles = st.cycles.value();
        r.retiredInsts = st.retiredInsts.value();
        r.ipc = ipc;
        r.hostSeconds = host_seconds;
        r.hostInstRate = host_seconds > 0
                             ? double(r.retiredInsts) / host_seconds
                             : 0.0;
        for (const std::string &name : st.group.names())
            r.counters.emplace(name, st.group.get(name));
        for (const std::string &name : st.group.distributionNames())
            r.distributions.emplace(
                name, st.group.distribution(name).snapshot());
        for (const std::string &name : st.group.formulaNames())
            r.formulas.emplace(name, st.group.formula(name));
        if (acct) {
            const StatGroup &ag = acct->stats();
            for (const std::string &name : ag.names())
                r.counters.emplace("acct_" + name, ag.get(name));
            r.hasAccounting = true;
            r.accountingJson = acct->json();
        }
        appendStatsJson(o.statsJson,
                        sim::simResultJson(r, o.mode, o.target));
    }
    return machine.halted() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Surface stray exceptions (LintError from --verify, filesystem
    // errors) as a clean diagnostic instead of std::terminate.
    try {
        return runMain(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dmp-run: %s\n", e.what());
        return 1;
    }
}
