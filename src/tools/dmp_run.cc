/**
 * @file
 * dmp-run — command-line driver for the diverge-merge simulator.
 *
 * Runs one workload (or an assembly file) through a chosen machine
 * configuration and prints the full statistics dump.
 *
 *   dmp-run [options] <workload-name | file.s>
 *
 *   --mode=base|dhp|dmp|dmp-enhanced|dual   machine mode
 *   --iters=N            workload loop iterations (default 2000)
 *   --seed=N             data seed of the measured run
 *   --rob=N              reorder buffer size
 *   --depth=N            front-end depth (min. mispredict penalty)
 *   --width=N            fetch/issue/retire width
 *   --predictor=perceptron|gshare|bimodal|hybrid
 *   --perfect-cbp        perfect conditional branch prediction
 *   --perfect-conf       perfect confidence estimation
 *   --loop-ext           diverge loop branches (section 2.7.4)
 *   --list               list workloads and exit
 *   --marks              print the marked-program listing and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/core.hh"
#include "isa/assembler.hh"
#include "profile/profiler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dmp;

namespace
{

struct Options
{
    std::string target;
    std::string mode = "dmp-enhanced";
    std::uint64_t iters = 2000;
    std::uint64_t seed = 0x4ef;
    unsigned rob = 0;
    unsigned depth = 0;
    unsigned width = 0;
    std::string predictor;
    bool perfectCbp = false;
    bool perfectConf = false;
    bool loopExt = false;
    bool list = false;
    bool marks = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr, "usage: dmp-run [options] <workload|file.s>\n"
                         "see the file header or README for options\n");
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char *a = argv[i];
        if (flagValue(a, "--mode", v))
            o.mode = v;
        else if (flagValue(a, "--iters", v))
            o.iters = std::strtoull(v.c_str(), nullptr, 0);
        else if (flagValue(a, "--seed", v))
            o.seed = std::strtoull(v.c_str(), nullptr, 0);
        else if (flagValue(a, "--rob", v))
            o.rob = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--depth", v))
            o.depth = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--width", v))
            o.width = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--predictor", v))
            o.predictor = v;
        else if (std::strcmp(a, "--perfect-cbp") == 0)
            o.perfectCbp = true;
        else if (std::strcmp(a, "--perfect-conf") == 0)
            o.perfectConf = true;
        else if (std::strcmp(a, "--loop-ext") == 0)
            o.loopExt = true;
        else if (std::strcmp(a, "--list") == 0)
            o.list = true;
        else if (std::strcmp(a, "--marks") == 0)
            o.marks = true;
        else if (a[0] == '-')
            usage();
        else if (o.target.empty())
            o.target = a;
        else
            usage();
    }
    return o;
}

core::CoreParams
machineFor(const Options &o)
{
    core::CoreParams p;
    if (o.mode == "base") {
    } else if (o.mode == "dhp") {
        p.predication = core::PredicationScope::SimpleHammock;
    } else if (o.mode == "dmp") {
        p.predication = core::PredicationScope::Diverge;
    } else if (o.mode == "dmp-enhanced") {
        p.predication = core::PredicationScope::Diverge;
        p.enhMultiCfm = true;
        p.enhEarlyExit = true;
        p.enhMultiDiverge = true;
    } else if (o.mode == "dual") {
        p.mode = core::CoreMode::DualPath;
    } else {
        dmp_fatal("unknown --mode: ", o.mode);
    }
    if (o.rob)
        p.robSize = o.rob;
    if (o.depth)
        p.frontendDepth = o.depth;
    if (o.width) {
        p.fetchWidth = o.width;
        p.issueWidth = o.width;
        p.retireWidth = o.width;
    }
    if (!o.predictor.empty()) {
        if (o.predictor == "perceptron")
            p.predictor = core::PredictorKind::Perceptron;
        else if (o.predictor == "gshare")
            p.predictor = core::PredictorKind::Gshare;
        else if (o.predictor == "bimodal")
            p.predictor = core::PredictorKind::Bimodal;
        else if (o.predictor == "hybrid")
            p.predictor = core::PredictorKind::Hybrid;
        else
            dmp_fatal("unknown --predictor: ", o.predictor);
    }
    p.perfectCondPredictor = o.perfectCbp;
    p.perfectConfidence = o.perfectConf;
    p.extLoopBranches = o.loopExt;
    return p;
}

bool
isWorkload(const std::string &name)
{
    for (const auto &info : workloads::workloadList())
        if (info.name == name)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    if (o.list) {
        for (const auto &info : workloads::workloadList())
            std::printf("%-10s %s\n", info.name.c_str(),
                        info.summary.c_str());
        return 0;
    }
    if (o.target.empty())
        usage();

    core::CoreParams params = machineFor(o);

    // Build or load the program.
    isa::Program prog;
    profile::MarkingReport report;
    if (isWorkload(o.target)) {
        workloads::WorkloadParams train;
        train.iterations = o.iters;
        train.seed = 0x7e41a;
        isa::Program tp = workloads::buildWorkload(o.target, train);
        profile::MarkerConfig mc;
        mc.markLoopBranches = o.loopExt;
        report = profile::profileAndMark(tp, params.memoryBytes, mc);

        workloads::WorkloadParams ref;
        ref.iterations = o.iters;
        ref.seed = o.seed;
        prog = workloads::buildWorkload(o.target, ref);
        profile::transferMarks(tp, prog);
    } else {
        std::ifstream in(o.target);
        if (!in)
            dmp_fatal("cannot open ", o.target);
        std::ostringstream text;
        text << in.rdbuf();
        prog = isa::assemble(text.str());
        profile::MarkerConfig mc;
        mc.markLoopBranches = o.loopExt;
        report = profile::profileAndMark(prog, params.memoryBytes, mc);
    }

    if (o.marks) {
        std::fputs(prog.listing().c_str(), stdout);
        return 0;
    }

    std::printf("target=%s mode=%s marked: %llu diverge, %llu hammock\n",
                o.target.c_str(), o.mode.c_str(),
                (unsigned long long)report.markedDiverge,
                (unsigned long long)report.markedSimpleHammock);

    core::Core machine(prog, params);
    machine.run();

    const core::CoreStats &st = machine.stats();
    double ipc = st.cycles.value()
                     ? double(st.retiredInsts.value()) /
                           double(st.cycles.value())
                     : 0.0;
    std::printf("IPC %.3f over %llu cycles\n\n", ipc,
                (unsigned long long)st.cycles.value());
    std::fputs(st.group.dump().c_str(), stdout);
    return machine.halted() ? 0 : 1;
}
