/**
 * @file
 * dmp-report — aggregate --stats-json / DMP_STATS_JSON JSONL records
 * into figure-ready tables, without re-running any simulation.
 *
 *   dmp-report [options] <stats.jsonl> [more.jsonl ...]
 *
 *   --summary            per-run overview (the default section)
 *   --topdown            top-down cycle breakdown, % of cycles per
 *                        bucket (records carrying an accounting block)
 *   --diff=A,B           mode-vs-mode comparison of labels A and B:
 *                        IPC delta and flush reduction per workload
 *   --branches[=N]       per-branch "who benefits from DMP" ranking by
 *                        estimated net cycles (top N rows; default 20,
 *                        0 = all); needs accounting records
 *   --flush-reduction=BASE,ENH
 *                        Figure 11: % reduction in pipeline flushes of
 *                        label ENH relative to label BASE
 *   --markings=PATH      static-marking agreement table from a
 *                        dmp-mark --json report (per workload: mark
 *                        counts, lint totals, diverge precision /
 *                        recall and CFM match rate vs the profiler).
 *                        PATH is a dmp-mark report, not a stats JSONL;
 *                        with only this section, no JSONL inputs are
 *                        needed
 *   --proofs=PATH        abstract-interpretation proof summary from a
 *                        dmp-lint --deep --json report (per workload:
 *                        proved one-sided branches, trip bounds,
 *                        resolved indirects, smear/decline status).
 *                        Like --markings, PATH is its own report file
 *                        and no JSONL inputs are needed
 *   --format=text|json|md  output rendering (default text)
 *
 * Passing any section flag suppresses the default summary; several
 * section flags compose in the order given. Records from multiple
 * input files are concatenated.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/report.hh"

using namespace dmp;
using sim::ReportTable;
using sim::StatsRecord;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: dmp-report [options] <stats.jsonl> [...]\n"
                 "see the file header or README for options\n");
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

/** Split "A,B" exactly in two (fatal otherwise). */
void
splitPair(const std::string &v, const char *flag, std::string &a,
          std::string &b)
{
    std::size_t comma = v.find(',');
    if (comma == std::string::npos || comma == 0 || comma + 1 == v.size())
        dmp_fatal(flag, ": expected two comma-separated labels, got: ",
                  v);
    a = v.substr(0, comma);
    b = v.substr(comma + 1);
}

struct Section
{
    enum Kind {
        Summary, Topdown, Diff, Branches, FlushReduction, Markings,
        Proofs
    } kind;
    std::string a, b;     // Diff / FlushReduction labels; report paths
    std::size_t topN = 0; // Branches
};

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::vector<Section> sections;
    sim::ReportFormat format = sim::ReportFormat::Text;

    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char *arg = argv[i];
        if (std::strcmp(arg, "--summary") == 0) {
            sections.push_back({Section::Summary, "", "", 0});
        } else if (std::strcmp(arg, "--topdown") == 0) {
            sections.push_back({Section::Topdown, "", "", 0});
        } else if (flagValue(arg, "--diff", v)) {
            Section s{Section::Diff, "", "", 0};
            splitPair(v, "--diff", s.a, s.b);
            sections.push_back(std::move(s));
        } else if (std::strcmp(arg, "--branches") == 0 ||
                   flagValue(arg, "--branches", v)) {
            Section s{Section::Branches, "", "", 20};
            if (!v.empty())
                s.topN = std::strtoul(v.c_str(), nullptr, 0);
            sections.push_back(std::move(s));
        } else if (flagValue(arg, "--flush-reduction", v)) {
            Section s{Section::FlushReduction, "", "", 0};
            splitPair(v, "--flush-reduction", s.a, s.b);
            sections.push_back(std::move(s));
        } else if (flagValue(arg, "--markings", v)) {
            sections.push_back({Section::Markings, v, "", 0});
        } else if (flagValue(arg, "--proofs", v)) {
            sections.push_back({Section::Proofs, v, "", 0});
        } else if (flagValue(arg, "--format", v)) {
            if (!sim::parseReportFormat(v, format))
                dmp_fatal("--format: expected text|json|md, got: ", v);
        } else if (arg[0] == '-') {
            usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (sections.empty())
        sections.push_back({Section::Summary, "", "", 0});
    // --markings/--proofs read their own report files; JSONL inputs
    // are required only when some section aggregates stats records.
    bool needRecords = false;
    for (const Section &s : sections)
        if (s.kind != Section::Markings && s.kind != Section::Proofs)
            needRecords = true;
    if (inputs.empty() && needRecords)
        usage();

    std::vector<StatsRecord> records;
    for (const std::string &path : inputs) {
        std::string err;
        if (!sim::loadStatsJsonl(path, records, err))
            dmp_fatal("dmp-report: ", err);
    }
    if (records.empty() && needRecords)
        dmp_fatal("dmp-report: no records in ",
                  inputs.size() == 1 ? inputs[0] : "the input files");

    std::vector<ReportTable> tables;
    for (const Section &s : sections) {
        switch (s.kind) {
          case Section::Summary:
            tables.push_back(sim::summaryTable(records));
            break;
          case Section::Topdown:
            tables.push_back(sim::topdownTable(records));
            break;
          case Section::Diff:
            tables.push_back(sim::diffTable(records, s.a, s.b));
            break;
          case Section::Branches:
            tables.push_back(sim::branchTable(records, s.topN));
            break;
          case Section::FlushReduction:
            tables.push_back(
                sim::flushReductionTable(records, s.a, s.b));
            break;
          case Section::Markings: {
            ReportTable t;
            std::string err;
            if (!sim::loadMarkingsTable(s.a, t, err))
                dmp_fatal("dmp-report: --markings: ", err);
            tables.push_back(std::move(t));
            break;
          }
          case Section::Proofs: {
            ReportTable t;
            std::string err;
            if (!sim::loadProofsTable(s.a, t, err))
                dmp_fatal("dmp-report: --proofs: ", err);
            tables.push_back(std::move(t));
            break;
          }
        }
        if (tables.back().rows.empty() &&
            format == sim::ReportFormat::Text) {
            std::fprintf(stderr,
                         "dmp-report: note: \"%s\" matched no records\n",
                         tables.back().title.c_str());
        }
    }
    std::fputs(sim::renderTables(tables, format).c_str(), stdout);
    return 0;
}
