/**
 * @file
 * dmp-lint — static verifier + diverge-marking legality linter.
 *
 * Builds (or assembles) a guest program, runs the profiling/marking
 * pass exactly as dmp-run would, and then statically checks both the
 * program itself (branch targets, reachability, call discipline,
 * register init, memory sanity) and every diverge marking against
 * CFG / dominator-tree ground truth.
 *
 *   dmp-lint [options] <workload-name | file.s | all>
 *
 *   --iters=N       workload loop iterations for the train build
 *                   (default 2000)
 *   --seed=N        train-run data seed (default: dmp-run's train seed)
 *   --loop-ext      mark loop diverge branches (section 2.7.4)
 *   --postdom       enable the static post-dominator CFM fallback
 *   --no-mark       lint the unmarked program (verifier passes only)
 *   --depth=N       predicate-depth bound (default:
 *                   CoreParams::predRegisters)
 *   --mem=N         data-memory bytes for load/store bound checks
 *                   (default: CoreParams::memoryBytes)
 *   --deep[=N]      run the abstract-interpretation value analysis
 *                   (N narrowing sweeps, default 2): proved memory
 *                   violations become Errors, proved-dead branch arms
 *                   and semantic unreachability are reported, resolved
 *                   indirect jumps upgrade cfm-unverifiable, and the
 *                   JSON gains per-target absint/branch-proof blocks
 *   --json[=PATH]   machine-readable report (stdout or PATH); schema
 *                   in EXPERIMENTS.md
 *   --quiet         suppress per-finding text output (summary only)
 *
 * Exit status: 0 when no target has error findings, 1 when at least
 * one does, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "common/logging.hh"
#include "core/params.hh"
#include "isa/assembler.hh"
#include "profile/profiler.hh"
#include "workloads/workloads.hh"

using namespace dmp;

namespace
{

struct Options
{
    std::vector<std::string> targets;
    std::uint64_t iters = 2000;
    std::uint64_t seed = 0x7e41a;
    bool loopExt = false;
    bool postDom = false;
    bool noMark = false;
    bool quiet = false;
    unsigned depth = 0;   // 0: CoreParams::predRegisters
    std::size_t mem = 0;  // 0: CoreParams::memoryBytes
    bool deep = false;
    unsigned deepIters = 2;
    bool json = false;
    std::string jsonPath; // empty with json=true: stdout
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: dmp-lint [options] <workload|file.s|all>\n"
                 "see the file header or README for options\n");
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char *a = argv[i];
        if (flagValue(a, "--iters", v))
            o.iters = std::strtoull(v.c_str(), nullptr, 0);
        else if (flagValue(a, "--seed", v))
            o.seed = std::strtoull(v.c_str(), nullptr, 0);
        else if (std::strcmp(a, "--loop-ext") == 0)
            o.loopExt = true;
        else if (std::strcmp(a, "--postdom") == 0)
            o.postDom = true;
        else if (std::strcmp(a, "--no-mark") == 0)
            o.noMark = true;
        else if (std::strcmp(a, "--quiet") == 0)
            o.quiet = true;
        else if (flagValue(a, "--depth", v))
            o.depth = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        else if (flagValue(a, "--mem", v))
            o.mem = std::strtoull(v.c_str(), nullptr, 0);
        else if (std::strcmp(a, "--deep") == 0)
            o.deep = true;
        else if (flagValue(a, "--deep", v)) {
            o.deep = true;
            o.deepIters = unsigned(std::strtoul(v.c_str(), nullptr, 0));
        }
        else if (std::strcmp(a, "--json") == 0)
            o.json = true;
        else if (flagValue(a, "--json", v)) {
            o.json = true;
            o.jsonPath = v;
        }
        else if (a[0] == '-')
            usage();
        else
            o.targets.push_back(a);
    }
    if (o.targets.empty())
        usage();
    return o;
}

bool
isWorkload(const std::string &name)
{
    for (const auto &info : workloads::workloadList())
        if (info.name == name)
            return true;
    return false;
}

/** Build + mark one target the way dmp-run's train pass would. */
isa::Program
loadTarget(const std::string &target, const Options &o,
           const profile::MarkerConfig &mc, std::size_t memoryBytes)
{
    isa::Program prog;
    if (isWorkload(target)) {
        workloads::WorkloadParams train;
        train.iterations = o.iters;
        train.seed = o.seed;
        prog = workloads::buildWorkload(target, train);
    } else {
        std::ifstream in(target);
        if (!in)
            dmp_fatal("cannot open ", target);
        std::ostringstream text;
        text << in.rdbuf();
        prog = isa::assemble(text.str());
    }
    if (!o.noMark)
        profile::profileAndMark(prog, memoryBytes, mc);
    return prog;
}

int
runMain(int argc, char **argv)
{
    Options o = parse(argc, argv);

    std::vector<std::string> targets;
    for (const std::string &t : o.targets) {
        if (t == "all") {
            for (const auto &info : workloads::workloadList())
                targets.push_back(info.name);
        } else {
            targets.push_back(t);
        }
    }

    const core::CoreParams defaults;
    analysis::AnalysisOptions ao;
    ao.marker.markLoopBranches = o.loopExt;
    ao.marker.usePostDomFallback = o.postDom;
    ao.maxPredicateDepth = o.depth ? o.depth : defaults.predRegisters;
    ao.memoryBytes = o.mem ? o.mem : defaults.memoryBytes;
    ao.absint = o.deep;
    ao.absintIterations = o.deepIters;

    std::ostringstream json;
    json << "{\"schema\":" << analysis::kReportSchemaVersion
         << ",\"targets\":[";

    std::size_t total_errors = 0, total_warnings = 0, total_infos = 0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const std::string &target = targets[i];
        isa::Program prog =
            loadTarget(target, o, ao.marker, ao.memoryBytes);
        analysis::AnalysisSummary summary;
        analysis::Report report =
            analysis::analyzeProgram(prog, ao, &summary);

        total_errors += report.errors();
        total_warnings += report.warnings();
        total_infos += report.infos();

        if (!o.quiet && !report.empty()) {
            std::printf("== %s ==\n", target.c_str());
            std::fputs(report.text().c_str(), stdout);
        }
        std::printf("%-12s %zu marks: %zu error(s), %zu warning(s), "
                    "%zu info(s)\n",
                    target.c_str(), prog.allMarks().size(),
                    report.errors(), report.warnings(), report.infos());
        if (o.deep && !o.quiet) {
            const analysis::AbsintStats &s = summary.absintStats;
            if (summary.absintRan)
                std::printf("             absint: %zu/%zu branches "
                            "proved one-sided, %zu trip-bounded, "
                            "%zu/%zu indirects resolved, %zu/%zu insts "
                            "unreachable%s\n",
                            s.provedTaken + s.provedNotTaken, s.branches,
                            s.tripBounded, s.indirectResolved,
                            s.indirectResolved + s.indirectUnresolved,
                            s.unreachable, s.insts,
                            summary.absintSmeared ? " (smeared)" : "");
            else
                std::printf("             absint: declined "
                            "(program too large or no fixpoint)\n");
        }

        if (o.json) {
            if (i)
                json << ",";
            json << "\n{\"target\":\"" << target
                 << "\",\"marks\":" << prog.allMarks().size()
                 << ",\"errors\":" << report.errors()
                 << ",\"warnings\":" << report.warnings()
                 << ",\"infos\":" << report.infos();
            if (o.deep) {
                const analysis::AbsintStats &s = summary.absintStats;
                json << ",\"absint\":{\"ran\":"
                     << (summary.absintRan ? "true" : "false")
                     << ",\"smeared\":"
                     << (summary.absintSmeared ? "true" : "false")
                     << ",\"insts\":" << s.insts
                     << ",\"unreachable\":" << s.unreachable
                     << ",\"branches\":" << s.branches
                     << ",\"proved_taken\":" << s.provedTaken
                     << ",\"proved_not_taken\":" << s.provedNotTaken
                     << ",\"trip_bounded\":" << s.tripBounded
                     << ",\"indirect_resolved\":" << s.indirectResolved
                     << ",\"indirect_unresolved\":"
                     << s.indirectUnresolved
                     << ",\"iterations\":" << s.iterations << "}";
                json << ",\"branch_proofs\":[";
                bool first = true;
                for (const auto &[pc, proof] : summary.branchProofs) {
                    using Status = analysis::BranchProof::Status;
                    if (proof.status == Status::None && proof.tripMax == 0)
                        continue;
                    if (!first)
                        json << ",";
                    first = false;
                    char pcbuf[24];
                    std::snprintf(pcbuf, sizeof(pcbuf), "0x%llx",
                                  static_cast<unsigned long long>(pc));
                    json << "{\"pc\":\"" << pcbuf << "\",\"status\":\""
                         << (proof.status == Status::Taken ? "taken"
                             : proof.status == Status::NotTaken
                                 ? "not-taken"
                                 : "none")
                         << "\",\"backward\":"
                         << (proof.backward ? "true" : "false")
                         << ",\"trip_max\":" << proof.tripMax << "}";
                }
                json << "]";
            }
            json << ",\"findings\":" << report.json() << "}";
        }
    }

    if (o.json) {
        // Aggregate summary so automation sees warning/info totals
        // (the exit status only reflects errors, which used to make
        // expected Warns — twolf/fma3d diverge-overlap — invisible).
        json << "\n],\"summary\":{\"targets\":" << targets.size()
             << ",\"errors\":" << total_errors
             << ",\"warnings\":" << total_warnings
             << ",\"infos\":" << total_infos << "}}\n";
        if (o.jsonPath.empty()) {
            std::fputs(json.str().c_str(), stdout);
        } else {
            std::ofstream out(o.jsonPath);
            if (!out)
                dmp_fatal("--json: cannot open ", o.jsonPath);
            out << json.str();
        }
    }

    if (targets.size() > 1)
        std::printf("total: %zu error(s), %zu warning(s), %zu info(s) "
                    "across %zu target(s)\n",
                    total_errors, total_warnings, total_infos,
                    targets.size());
    return total_errors ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Surface stray exceptions (assembler/filesystem errors) as a
    // clean diagnostic instead of std::terminate.
    try {
        return runMain(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dmp-lint: %s\n", e.what());
        return 1;
    }
}
