/**
 * @file
 * dmp-mark — profile-free static marking synthesis report.
 *
 * Builds (or assembles) a guest program, synthesizes diverge/CFM
 * markings from static analysis alone (analysis/markgen.hh), lints
 * them, and — unless told otherwise — runs the profiled marker on a
 * second copy of the same image to report how closely the static
 * marking agrees with the paper's profile-driven one.
 *
 *   dmp-mark [options] <workload-name | file.s | all>
 *
 *   --iters=N       workload loop iterations (default 2000)
 *   --seed=N        data seed of the built image (default: dmp-run's
 *                   train seed, so the comparison profiles the same
 *                   program dmp-run trains on)
 *   --loop-ext      mark loop diverge branches (section 2.7.4)
 *   --no-hammock    skip the simple-hammock (DHP) marks
 *   --prune=P       frequent-path edge-pruning threshold (default 0.1)
 *   --no-compare    skip the profiled-marker agreement pass
 *   --absint        refine the frequency estimate with abstract
 *                   interpretation (the default; per-branch proof
 *                   status appears in the text and JSON reports)
 *   --no-absint     pure-heuristic synthesis (pre-absint behaviour)
 *   --mem=N         data-memory bytes for the comparison train run
 *                   (default: CoreParams::memoryBytes)
 *   --json[=PATH]   machine-readable report (stdout or PATH); schema
 *                   in EXPERIMENTS.md. Byte-deterministic per target.
 *   --quiet         suppress the per-candidate cost table
 *
 * Exit status: 0 when every synthesized marking is linter-clean,
 * 1 when any target has error findings, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/markgen.hh"
#include "common/logging.hh"
#include "core/params.hh"
#include "isa/assembler.hh"
#include "profile/profiler.hh"
#include "workloads/workloads.hh"

using namespace dmp;

namespace
{

struct Options
{
    std::vector<std::string> targets;
    std::uint64_t iters = 2000;
    std::uint64_t seed = 0x7e41a;
    bool loopExt = false;
    bool noHammock = false;
    bool compare = true;
    bool absint = true;
    bool quiet = false;
    double prune = -1;   // <0: MarkGenConfig default
    std::size_t mem = 0; // 0: CoreParams::memoryBytes
    bool json = false;
    std::string jsonPath; // empty with json=true: stdout
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: dmp-mark [options] <workload|file.s|all>\n"
                 "see the file header or README for options\n");
    std::exit(2);
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    return false;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        const char *a = argv[i];
        if (flagValue(a, "--iters", v))
            o.iters = std::strtoull(v.c_str(), nullptr, 0);
        else if (flagValue(a, "--seed", v))
            o.seed = std::strtoull(v.c_str(), nullptr, 0);
        else if (std::strcmp(a, "--loop-ext") == 0)
            o.loopExt = true;
        else if (std::strcmp(a, "--no-hammock") == 0)
            o.noHammock = true;
        else if (std::strcmp(a, "--no-compare") == 0)
            o.compare = false;
        else if (std::strcmp(a, "--absint") == 0)
            o.absint = true;
        else if (std::strcmp(a, "--no-absint") == 0)
            o.absint = false;
        else if (std::strcmp(a, "--quiet") == 0)
            o.quiet = true;
        else if (flagValue(a, "--prune", v))
            o.prune = std::strtod(v.c_str(), nullptr);
        else if (flagValue(a, "--mem", v))
            o.mem = std::strtoull(v.c_str(), nullptr, 0);
        else if (std::strcmp(a, "--json") == 0)
            o.json = true;
        else if (flagValue(a, "--json", v)) {
            o.json = true;
            o.jsonPath = v;
        }
        else if (a[0] == '-')
            usage();
        else
            o.targets.push_back(a);
    }
    if (o.targets.empty())
        usage();
    return o;
}

bool
isWorkload(const std::string &name)
{
    for (const auto &info : workloads::workloadList())
        if (info.name == name)
            return true;
    return false;
}

isa::Program
loadTarget(const std::string &target, const Options &o)
{
    if (isWorkload(target)) {
        workloads::WorkloadParams p;
        p.iterations = o.iters;
        p.seed = o.seed;
        return workloads::buildWorkload(target, p);
    }
    std::ifstream in(target);
    if (!in)
        dmp_fatal("cannot open ", target);
    std::ostringstream text;
    text << in.rdbuf();
    return isa::assemble(text.str());
}

int
runMain(int argc, char **argv)
{
    Options o = parse(argc, argv);

    std::vector<std::string> targets;
    for (const std::string &t : o.targets) {
        if (t == "all") {
            for (const auto &info : workloads::workloadList())
                targets.push_back(info.name);
        } else {
            targets.push_back(t);
        }
    }

    const core::CoreParams defaults;
    analysis::MarkGenConfig mg;
    mg.marker.markLoopBranches = o.loopExt;
    mg.markHammocks = !o.noHammock;
    mg.maxPredicateDepth = defaults.predRegisters;
    mg.useAbsint = o.absint;
    if (o.prune >= 0)
        mg.pruneProbability = o.prune;
    const std::size_t mem = o.mem ? o.mem : defaults.memoryBytes;

    std::ostringstream json;
    json << "{\"schema\":" << analysis::kMarkGenSchemaVersion
         << ",\"targets\":[";

    std::size_t total_errors = 0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const std::string &target = targets[i];
        isa::Program prog = loadTarget(target, o);
        analysis::MarkGenReport report =
            analysis::synthesizeMarks(prog, mg);
        total_errors += report.lintErrors;

        analysis::MarkAgreement agreement;
        bool haveAgreement = false;
        if (o.compare) {
            isa::Program profiled = loadTarget(target, o);
            profile::profileAndMark(profiled, mem, mg.marker);
            agreement = analysis::compareMarkings(prog, profiled);
            haveAgreement = true;
        }

        std::fputs(
            analysis::markGenText(target, report,
                                  haveAgreement ? &agreement : nullptr,
                                  !o.quiet)
                .c_str(),
            stdout);

        if (o.json) {
            if (i)
                json << ",";
            json << "\n"
                 << analysis::markGenTargetJson(
                        target, report,
                        haveAgreement ? &agreement : nullptr);
        }
    }

    if (o.json) {
        json << "\n]}\n";
        if (o.jsonPath.empty()) {
            std::fputs(json.str().c_str(), stdout);
        } else {
            std::ofstream out(o.jsonPath);
            if (!out)
                dmp_fatal("--json: cannot open ", o.jsonPath);
            out << json.str();
        }
    }

    if (targets.size() > 1)
        std::printf("total: %zu lint error(s) across %zu target(s)\n",
                    total_errors, targets.size());
    return total_errors ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dmp-mark: %s\n", e.what());
        return 1;
    }
}
