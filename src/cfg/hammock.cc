#include "cfg/hammock.hh"

#include "common/logging.hh"

namespace dmp::cfg
{

namespace
{

/**
 * True when `side` qualifies as a hammock side block: straight-line code
 * with a single successor and a single predecessor, no calls, no
 * conditional branches, no indirect transfers.
 */
bool
isSideBlock(const Cfg &cfg, const isa::Program &program, BlockId side,
            BlockId branch_block, BlockId &join_out)
{
    const BasicBlock &bb = cfg.block(side);
    if (bb.succs.size() != 1)
        return false;
    if (bb.preds.size() != 1 || bb.preds[0] != branch_block)
        return false;
    if (bb.hasCall || bb.endsInCondBranch || bb.endsInIndirect ||
        bb.endsInHalt) {
        return false;
    }
    // Internal instructions must be non-control; the terminator may be a
    // fallthrough or a direct JMP (checked via block metadata above plus
    // a scan for stray control instructions).
    for (Addr pc = bb.start; pc < bb.end; pc += isa::kInstBytes) {
        const isa::Inst &inst = program.fetch(pc);
        bool is_last = pc == bb.lastInstPc();
        if (isa::isControl(inst.op) &&
            !(is_last && inst.op == isa::Opcode::JMP)) {
            return false;
        }
    }
    join_out = bb.succs[0];
    return true;
}

} // namespace

HammockInfo
classifyHammock(const Cfg &cfg, const isa::Program &program,
                BlockId branch_block)
{
    HammockInfo info;
    const BasicBlock &bb = cfg.block(branch_block);
    if (!bb.endsInCondBranch || bb.succs.size() != 2)
        return info;

    BlockId a = bb.succs[0];
    BlockId b = bb.succs[1];

    // Case 1: bare if. One successor is the join itself.
    BlockId join = kNoBlock;
    if (isSideBlock(cfg, program, a, branch_block, join) && join == b) {
        info.isSimpleHammock = true;
        info.hasElse = false;
        info.joinAddr = cfg.block(b).start;
        return info;
    }
    if (isSideBlock(cfg, program, b, branch_block, join) && join == a) {
        info.isSimpleHammock = true;
        info.hasElse = false;
        info.joinAddr = cfg.block(a).start;
        return info;
    }

    // Case 2: if-else. Both successors are side blocks with a common join.
    BlockId join_a = kNoBlock, join_b = kNoBlock;
    if (isSideBlock(cfg, program, a, branch_block, join_a) &&
        isSideBlock(cfg, program, b, branch_block, join_b) &&
        join_a == join_b && join_a != kNoBlock) {
        info.isSimpleHammock = true;
        info.hasElse = true;
        info.joinAddr = cfg.block(join_a).start;
    }
    return info;
}

} // namespace dmp::cfg
