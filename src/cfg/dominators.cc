#include "cfg/dominators.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmp::cfg
{

namespace
{

/**
 * Reverse post-order of the reverse graph (i.e., order from exits
 * inward), with a virtual exit node of index n. `preds` is the forward
 * predecessor relation of the input graph.
 */
void
reversePostOrderFromExit(const std::vector<std::vector<BlockId>> &succs,
                         const std::vector<std::vector<BlockId>> &preds,
                         std::vector<BlockId> &order,
                         std::vector<int> &rpo_num)
{
    const int n = int(succs.size());
    std::vector<char> visited(n + 1, 0);
    order.clear();
    order.reserve(n + 1);

    // Iterative DFS on the reverse graph starting from the virtual exit.
    // Virtual exit's "predecessors in the reverse graph" are all blocks
    // with no static successors.
    std::vector<std::pair<BlockId, std::size_t>> stack;
    auto rpreds = [&](BlockId b) -> std::vector<BlockId> {
        if (b == n) {
            std::vector<BlockId> exits;
            for (BlockId i = 0; i < n; ++i) {
                if (succs[i].empty())
                    exits.push_back(i);
            }
            return exits;
        }
        return preds[b];
    };

    stack.emplace_back(n, 0);
    visited[n] = 1;
    std::vector<BlockId> post;
    // Classic iterative post-order: expand children (here: graph preds)
    // before emitting the node.
    std::vector<std::vector<BlockId>> memo(n + 1);
    memo[n] = rpreds(n);
    while (!stack.empty()) {
        auto &[node, next] = stack.back();
        if (next < memo[node].size()) {
            BlockId child = memo[node][next++];
            if (!visited[child]) {
                visited[child] = 1;
                memo[child] = rpreds(child);
                stack.emplace_back(child, 0);
            }
        } else {
            post.push_back(node);
            stack.pop_back();
        }
    }
    // Reverse post-order.
    order.assign(post.rbegin(), post.rend());
    rpo_num.assign(n + 1, -1);
    for (int i = 0; i < int(order.size()); ++i)
        rpo_num[order[i]] = i;
}

} // namespace

std::vector<BlockId>
computeIpdoms(const std::vector<std::vector<BlockId>> &succs)
{
    const int n = int(succs.size());
    const BlockId virtual_exit = n;
    std::vector<BlockId> idom(n + 1, kNoBlock);
    if (n == 0)
        return {};

    std::vector<std::vector<BlockId>> preds(n);
    for (BlockId b = 0; b < n; ++b) {
        for (BlockId s : succs[b]) {
            dmp_assert(s >= 0 && s < n, "successor out of range");
            preds[s].push_back(b);
        }
    }

    std::vector<BlockId> order;
    std::vector<int> rpo;
    reversePostOrderFromExit(succs, preds, order, rpo);

    // Cooper-Harvey-Kennedy on the reverse graph.
    std::vector<BlockId> doms(n + 1, kNoBlock); // kNoBlock == undefined
    doms[virtual_exit] = virtual_exit;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpo[a] > rpo[b])
                a = doms[a];
            while (rpo[b] > rpo[a])
                b = doms[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId node : order) {
            if (node == virtual_exit)
                continue;
            // "Predecessors" in the reverse graph == graph successors;
            // successor-less blocks flow to the virtual exit.
            BlockId new_idom = kNoBlock;
            auto consider = [&](BlockId s) {
                if (doms[s] == kNoBlock)
                    return;
                new_idom = (new_idom == kNoBlock) ? s
                                                  : intersect(s, new_idom);
            };
            if (succs[node].empty()) {
                consider(virtual_exit);
            } else {
                for (BlockId s : succs[node])
                    consider(s);
            }
            if (new_idom != kNoBlock && doms[node] != new_idom) {
                doms[node] = new_idom;
                changed = true;
            }
        }
    }

    std::vector<BlockId> out(n, kNoBlock);
    for (BlockId b = 0; b < n; ++b)
        out[b] = (doms[b] == virtual_exit || doms[b] == kNoBlock)
                     ? kNoBlock
                     : doms[b];
    return out;
}

PostDomTree::PostDomTree(const Cfg &cfg) : graph(cfg)
{
    const int n = int(cfg.size());
    std::vector<std::vector<BlockId>> succs(n);
    for (BlockId b = 0; b < n; ++b)
        succs[b] = cfg.block(b).succs;
    idom = computeIpdoms(succs);
}

BlockId
PostDomTree::ipdom(BlockId id) const
{
    dmp_assert(id >= 0 && id < BlockId(graph.size()), "bad block id");
    return idom[id];
}

bool
PostDomTree::postDominates(BlockId a, BlockId b) const
{
    if (a == b)
        return true;
    BlockId cur = idom[b];
    while (cur != kNoBlock) {
        if (cur == a)
            return true;
        cur = idom[cur];
    }
    return false;
}

Addr
PostDomTree::ipdomAddr(Addr branch_pc) const
{
    BlockId b = graph.blockContaining(branch_pc);
    if (b == kNoBlock)
        return kNoAddr;
    BlockId p = ipdom(b);
    return p == kNoBlock ? kNoAddr : graph.block(p).start;
}

} // namespace dmp::cfg
