/**
 * @file
 * Simple-hammock detection.
 *
 * Dynamic Hammock Predication (Klauser et al., the paper's primary
 * comparison point) can only predicate "simple hammock branches (simple
 * if-else structures with no other control flow inside)". This pass
 * recognizes exactly those shapes so the DHP baseline is marked the same
 * way the paper's was.
 */

#ifndef DMP_CFG_HAMMOCK_HH
#define DMP_CFG_HAMMOCK_HH

#include "cfg/cfg.hh"

namespace dmp::cfg
{

/** Result of classifying one conditional branch's local structure. */
struct HammockInfo
{
    bool isSimpleHammock = false;
    /** Join (reconvergence) address when isSimpleHammock. */
    Addr joinAddr = kNoAddr;
    /** True for if-else (two side blocks); false for bare if. */
    bool hasElse = false;
};

/**
 * Classify the conditional branch ending block `branch_block`.
 *
 * A simple hammock is either:
 *  - if:      branch -> {S, J}, S has J as its only successor, S has the
 *             branch block as its only predecessor, S contains no control
 *             flow (no branches, calls, or indirect transfers except an
 *             optional final unconditional JMP to J);
 *  - if-else: branch -> {S1, S2}, both side blocks as above joining at
 *             the same J.
 */
HammockInfo classifyHammock(const Cfg &cfg, const isa::Program &program,
                            BlockId branch_block);

} // namespace dmp::cfg

#endif // DMP_CFG_HAMMOCK_HH
