/**
 * @file
 * Post-dominator analysis over a Cfg.
 *
 * The paper contrasts profile-driven CFM points with the immediate
 * post-dominator ("If there were no dashed lines ... the CFM point would
 * also be the immediate post-dominator of block A", section 2.3). We
 * compute immediate post-dominators both as a static CFM fallback policy
 * and to reason about control independence in tests and the Figure 1
 * classifier.
 */

#ifndef DMP_CFG_DOMINATORS_HH
#define DMP_CFG_DOMINATORS_HH

#include <vector>

#include "cfg/cfg.hh"

namespace dmp::cfg
{

/**
 * Immediate post-dominators of an arbitrary successor relation over
 * nodes [0, succs.size()), computed with the Cooper-Harvey-Kennedy
 * iterative algorithm on the reverse graph with a virtual exit node
 * collecting successor-less nodes.
 *
 * The relation need not be a Cfg's: the static marker (src/analysis/
 * markgen.cc) feeds it edge-filtered graphs where low-probability
 * successors are pruned, yielding the "frequently executed path"
 * post-dominators the paper's CFM points approximate.
 *
 * @return ipdom per node; kNoBlock when the only post-dominator is the
 *         virtual exit (or the node never reaches an exit).
 */
std::vector<BlockId>
computeIpdoms(const std::vector<std::vector<BlockId>> &succs);

/**
 * Immediate post-dominator tree of a Cfg, computed with the
 * Cooper-Harvey-Kennedy iterative algorithm on the reverse graph with a
 * virtual exit node collecting HALT/indirect/successor-less blocks.
 */
class PostDomTree
{
  public:
    explicit PostDomTree(const Cfg &cfg);

    /**
     * Immediate post-dominator block of `id`, or kNoBlock when the only
     * post-dominator is the virtual exit.
     */
    BlockId ipdom(BlockId id) const;

    /** True when `a` post-dominates `b`. */
    bool postDominates(BlockId a, BlockId b) const;

    /**
     * First-instruction address of the immediate post-dominator block of
     * the block containing branch_pc, or kNoAddr.
     */
    Addr ipdomAddr(Addr branch_pc) const;

  private:
    const Cfg &graph;
    /** ipdom indexed by block; kNoBlock means the virtual exit. */
    std::vector<BlockId> idom;
};

} // namespace dmp::cfg

#endif // DMP_CFG_DOMINATORS_HH
