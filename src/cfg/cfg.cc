#include "cfg/cfg.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace dmp::cfg
{

using isa::Inst;
using isa::kInstBytes;
using isa::Opcode;

Cfg
Cfg::build(const isa::Program &program)
{
    Cfg cfg;
    if (program.size() == 0)
        return cfg;

    const Addr base = program.baseAddr();
    const Addr end = program.endAddr();

    // Pass 1: find leaders.
    std::set<Addr> leaders;
    leaders.insert(base);
    for (Addr pc = base; pc < end; pc += kInstBytes) {
        const Inst &inst = program.fetch(pc);
        if (!isa::isControl(inst.op) && inst.op != Opcode::HALT)
            continue;
        // The instruction after any control transfer starts a block.
        if (pc + kInstBytes < end)
            leaders.insert(pc + kInstBytes);
        // Direct targets start blocks.
        if (inst.target != kNoAddr && program.contains(inst.target))
            leaders.insert(inst.target);
    }

    // Pass 2: materialize blocks.
    std::vector<Addr> starts(leaders.begin(), leaders.end());
    for (std::size_t i = 0; i < starts.size(); ++i) {
        BasicBlock bb;
        bb.start = starts[i];
        bb.end = (i + 1 < starts.size()) ? starts[i + 1] : end;
        for (Addr pc = bb.start; pc < bb.end; pc += kInstBytes) {
            const Inst &inst = program.fetch(pc);
            if (isa::isCall(inst.op))
                bb.hasCall = true;
        }
        const Inst &last = program.fetch(bb.lastInstPc());
        bb.endsInCondBranch = isa::isCondBranch(last.op);
        bb.endsInIndirect = isa::isIndirect(last.op);
        bb.endsInHalt = last.op == Opcode::HALT;
        cfg.startIndex[bb.start] = BlockId(cfg.blockList.size());
        cfg.blockList.push_back(bb);
    }
    cfg.entryBlock = cfg.startIndex.at(base);

    // Pass 3: edges.
    for (BlockId id = 0; id < BlockId(cfg.blockList.size()); ++id) {
        BasicBlock &bb = cfg.blockList[id];
        const Inst &last = program.fetch(bb.lastInstPc());

        auto link = [&](Addr target) {
            auto it = cfg.startIndex.find(target);
            if (it == cfg.startIndex.end())
                return;
            bb.succs.push_back(it->second);
            cfg.blockList[it->second].preds.push_back(id);
        };

        if (bb.endsInHalt || bb.endsInIndirect) {
            // No static successors (indirect targets are unknown; RET
            // leaves the region). The post-dominator pass treats these
            // as exits.
            continue;
        }
        if (isa::isCondBranch(last.op)) {
            // Fallthrough first, then taken target.
            if (bb.end < end)
                link(bb.end);
            link(last.target);
        } else if (last.op == Opcode::JMP) {
            link(last.target);
        } else if (last.op == Opcode::CALL) {
            // Intra-procedural view: control returns to the fallthrough.
            if (bb.end < end)
                link(bb.end);
        } else {
            if (bb.end < end)
                link(bb.end);
        }
    }

    // Deduplicate succ/pred lists (a branch whose target equals its
    // fallthrough would otherwise produce parallel edges).
    for (auto &bb : cfg.blockList) {
        std::sort(bb.succs.begin(), bb.succs.end());
        bb.succs.erase(std::unique(bb.succs.begin(), bb.succs.end()),
                       bb.succs.end());
        std::sort(bb.preds.begin(), bb.preds.end());
        bb.preds.erase(std::unique(bb.preds.begin(), bb.preds.end()),
                       bb.preds.end());
    }

    return cfg;
}

BlockId
Cfg::blockContaining(Addr pc) const
{
    // Binary search over block start addresses.
    if (blockList.empty())
        return kNoBlock;
    std::size_t lo = 0, hi = blockList.size();
    while (lo + 1 < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (blockList[mid].start <= pc)
            lo = mid;
        else
            hi = mid;
    }
    const BasicBlock &bb = blockList[lo];
    return (pc >= bb.start && pc < bb.end) ? BlockId(lo) : kNoBlock;
}

BlockId
Cfg::blockStartingAt(Addr pc) const
{
    auto it = startIndex.find(pc);
    return it == startIndex.end() ? kNoBlock : it->second;
}

std::vector<std::pair<BlockId, BlockId>>
backEdges(const Cfg &cfg)
{
    std::vector<std::pair<BlockId, BlockId>> edges;
    for (BlockId u = 0; u < BlockId(cfg.size()); ++u)
        for (BlockId v : cfg.block(u).succs)
            if (cfg.block(v).start <= cfg.block(u).start)
                edges.emplace_back(u, v);
    return edges;
}

} // namespace dmp::cfg
