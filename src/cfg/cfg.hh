/**
 * @file
 * Static control-flow graph over a Program.
 *
 * Used by the compiler side of the reproduction: simple-hammock
 * detection for the DHP baseline, immediate post-dominator computation
 * as a static CFM fallback, and structural classification of mispredicted
 * branches (Figure 6).
 */

#ifndef DMP_CFG_CFG_HH
#define DMP_CFG_CFG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace dmp::cfg
{

/** Index of a basic block within its Cfg. */
using BlockId = std::int32_t;

constexpr BlockId kNoBlock = -1;

/** One basic block: [start, end) in instruction addresses. */
struct BasicBlock
{
    Addr start = 0;
    Addr end = 0; ///< exclusive

    std::vector<BlockId> succs;
    std::vector<BlockId> preds;

    /** The block ends with a conditional branch at `end - 4`. */
    bool endsInCondBranch = false;
    /** The block ends with an indirect transfer (JR/RET). */
    bool endsInIndirect = false;
    /** The block contains a CALL (disqualifies simple hammocks). */
    bool hasCall = false;
    /** The block ends with HALT. */
    bool endsInHalt = false;

    Addr lastInstPc() const { return end - isa::kInstBytes; }
    std::size_t instCount() const
    {
        return (end - start) / isa::kInstBytes;
    }
};

/** Whole-program control-flow graph. */
class Cfg
{
  public:
    /** Build the CFG of a program by leader analysis. */
    static Cfg build(const isa::Program &program);

    const std::vector<BasicBlock> &blocks() const { return blockList; }

    const BasicBlock &block(BlockId id) const { return blockList[id]; }

    /** Block containing pc, or kNoBlock. */
    BlockId blockContaining(Addr pc) const;

    /** Block starting exactly at pc, or kNoBlock. */
    BlockId blockStartingAt(Addr pc) const;

    /** Entry block id (program base address). */
    BlockId entry() const { return entryBlock; }

    std::size_t size() const { return blockList.size(); }

  private:
    std::vector<BasicBlock> blockList;
    std::unordered_map<Addr, BlockId> startIndex;
    BlockId entryBlock = kNoBlock;
};

/**
 * All back edges (u, v) of the graph: successor edges whose target
 * block starts at or before the source block. Workload code lays loops
 * out contiguously, so [v.start, u.end) is the loop body — the address
 * interval the frequency estimator's loop-depth view and the abstract
 * interpreter's widening-point selection are both built on.
 */
std::vector<std::pair<BlockId, BlockId>> backEdges(const Cfg &cfg);

} // namespace dmp::cfg

#endif // DMP_CFG_CFG_HH
