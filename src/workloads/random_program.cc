/**
 * @file
 * Random-program generator for property-based testing.
 *
 * Generates structurally valid, always-terminating programs out of the
 * same idioms the workloads use (hammocks, diverge shapes,
 * non-mergeable regions, calls, switches, loads/stores), with the
 * structure drawn from `structure_seed` and data from `data_seed`.
 * The test suite runs these through the timing core in every mode and
 * checks architectural equivalence against the functional simulator.
 */

#include "common/logging.hh"
#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace dmp::workloads
{

using isa::Label;
using isa::Program;
using isa::ProgramBuilder;

isa::Program
buildRandomProgram(std::uint64_t structure_seed, std::uint64_t data_seed,
                   unsigned size_class)
{
    ProgramBuilder b;
    Random srng(structure_seed ^ 0xD1CE);
    Random drng(data_seed ^ 0xF00D);

    const unsigned table_log2 = 10 + unsigned(srng.below(3)); // 8-32KB
    const std::uint64_t iters = 40ULL * (size_class + 1) +
                                srng.below(60 * (size_class + 1));
    const Addr data_base = 0x100000;

    seedData(b, drng, data_base, 1u << table_log2);

    // Optional callee.
    Label fn = b.newLabel();
    bool has_fn = srng.chancePercent(70);
    if (has_fn) {
        Label over = b.newLabel();
        b.jmp(over);
        b.bind(fn);
        emitAluBlock(b, srng, 2 + unsigned(srng.below(8)), 16);
        if (srng.chancePercent(50))
            emitSimpleHammock(b, srng, 15, unsigned(srng.below(24)), 3,
                              3);
        b.ret();
        b.bind(over);
    }

    b.li(rCnt, 0);
    b.li(rBound, std::int64_t(iters));
    b.li(rData, std::int64_t(data_base));
    b.li(rOut, std::int64_t(data_base + (1u << 19)));
    b.li(rRng, std::int64_t(drng.next() >> 1));
    for (ArchReg r = 15; r <= 22; ++r)
        b.li(r, std::int64_t(drng.below(1 << 16)));
    for (ArchReg r = 32; r <= 39; ++r)
        b.li(r, std::int64_t(drng.below(1 << 16)));

    Label loop = b.newLabel();
    b.bind(loop);

    const unsigned regions = 2 + unsigned(srng.below(4 + size_class));
    for (unsigned i = 0; i < regions; ++i) {
        emitLcg(b, 23);
        switch (srng.below(7)) {
          case 0:
            emitSimpleHammock(b, srng, 23, unsigned(srng.below(32)),
                              1 + unsigned(srng.below(6)),
                              unsigned(srng.below(6)));
            break;
          case 1:
            emitComplexDiverge(b, srng, 23,
                               4 + unsigned(srng.below(10)),
                               500 + unsigned(srng.below(500)),
                               unsigned(srng.below(200)));
            break;
          case 2:
            emitNonMergeable(b, srng, 23,
                             30 + unsigned(srng.below(120)));
            break;
          case 3: {
            // Load + dependent hammock.
            b.andi(8, 23, (1LL << table_log2) - 1);
            b.shli(8, 8, 3);
            b.add(8, 8, rData);
            b.ld(24, 8, 0);
            emitSimpleHammock(b, srng, 24, unsigned(srng.below(24)),
                              1 + unsigned(srng.below(5)),
                              unsigned(srng.below(5)));
            break;
          }
          case 4: {
            // Store then load back (forwarding paths).
            b.andi(8, 23, 1023);
            b.shli(8, 8, 3);
            b.add(8, 8, rOut);
            b.st(8, 0, 23);
            if (srng.chancePercent(60))
                b.ld(25, 8, 0);
            break;
          }
          case 5:
            if (has_fn) {
                b.call(fn);
                break;
            }
            [[fallthrough]];
          default:
            emitAluBlock(b, srng, 3 + unsigned(srng.below(10)), 23);
            break;
        }
    }

    // Occasionally a small inner loop (bounded trip count).
    if (srng.chancePercent(50)) {
        b.andi(26, 23, 7);
        Label inner = b.newLabel();
        b.bind(inner);
        emitAluBlock(b, srng, 2 + unsigned(srng.below(4)), 26);
        b.addi(26, 26, -1);
        b.blt(0, 26, inner);
    }

    b.addi(rCnt, rCnt, 1);
    b.blt(rCnt, rBound, loop);
    b.add(15, 15, 16);
    b.add(15, 15, 17);
    b.add(15, 15, 33);
    b.add(15, 15, 36);
    b.st(rOut, 0, 15);
    b.st(rOut, 8, rRng);
    b.halt();
    return b.build();
}

} // namespace dmp::workloads
