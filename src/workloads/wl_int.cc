/**
 * @file
 * Integer workloads (bzip2 ... vpr).
 *
 * Calibration method: each benchmark's dynamic instruction stream is
 * mostly *predictable* filler (emitPadding: ALU + learnable branches),
 * dosed with hard branch regions at a frequency chosen to land near the
 * paper's Table 3 misprediction rate (mispredicted branches per 1000
 * instructions) and Figure 6 class mix:
 *
 *   bench    target misp/KI   dominant class
 *   bzip2    7.6              complex diverge
 *   crafty   3.5              mixed, some diverge
 *   eon      1.3              (predictable)
 *   gap      0.8              diverge w/ poor merge (case 3)
 *   gcc      8.2              other complex
 *   gzip     5.0              diverge w/ moderate merge
 *   mcf      5.4              simple hammocks (44%)
 *   parser   8.2              complex diverge (big DMP win)
 *   perlbmk  ~0               (near-perfect prediction)
 *   twolf    5.2              complex diverge
 *   vortex   0.9              (predictable)
 *   vpr      9.3              complex diverge + some hammocks
 *
 * Hard-region *frequency* is set with loop-counter-periodic guards
 * (perfectly learnable), never with biased random branches, so the
 * guards themselves add no mispredictions.
 */

#include "common/logging.hh"
#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace dmp::workloads
{

using isa::Label;
using isa::Program;
using isa::ProgramBuilder;

namespace
{

/** Shared prologue: counters, data pointers, RNG register. */
void
prologue(ProgramBuilder &b, Random &drng, const WorkloadParams &wp,
         std::uint64_t iter_scale_permille = 1000)
{
    std::uint64_t iters =
        std::max<std::uint64_t>(1, wp.iterations * iter_scale_permille /
                                       1000);
    b.li(rCnt, 0);
    b.li(rBound, std::int64_t(iters));
    b.li(rData, std::int64_t(wp.dataBase));
    b.li(rOut, std::int64_t(wp.dataBase + (8u << 20)));
    b.li(rRng, std::int64_t(drng.next() >> 1));
    for (ArchReg r = 15; r <= 22; ++r)
        b.li(r, std::int64_t(drng.below(1 << 20)));
    for (ArchReg r = 32; r <= 39; ++r)
        b.li(r, std::int64_t(drng.below(1 << 20)));
}

/** Shared epilogue: bump counter, loop, store a checksum, halt. */
void
epilogue(ProgramBuilder &b, Label loop)
{
    b.addi(rCnt, rCnt, 1);
    b.blt(rCnt, rBound, loop);
    b.add(15, 15, 16);
    b.add(15, 15, 17);
    b.add(15, 15, 18);
    b.add(33, 33, 34);
    b.add(33, 33, 35);
    b.xor_(15, 15, 33);
    b.st(rOut, 0, 15);
    b.st(rOut, 8, rRng);
    b.halt();
}

/** Load a data word indexed by the low bits of `idxReg`. */
void
emitTableLoad(ProgramBuilder &b, ArchReg dst, ArchReg idxReg,
              unsigned table_words_log2)
{
    b.andi(8, idxReg, (1LL << table_words_log2) - 1);
    b.shli(8, 8, 3);
    b.add(8, 8, rData);
    b.ld(dst, 8, 0);
}

Program
make_bzip2(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0xB21F2);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 8192);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 13);
    emitPadding(b, srng, 2, 12);
    // Hard multi-merge region (multiple CFM points) plus a single-CFM
    // complex diverge region per iteration.
    emitMultiMergeDiverge(b, srng, 24);
    emitPadding(b, srng, 2, 12);
    b.shri(25, 24, 17);
    emitComplexDiverge(b, srng, 25, 9, 1016, 31);
    emitPadding(b, srng, 2, 12);
    b.andi(8, rCnt, 8191);
    b.shli(8, 8, 3);
    b.add(8, 8, rOut);
    b.st(8, 0, 24);

    epilogue(b, loop);
    return b.build();
}

Program
make_crafty(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0xC4AF7);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 4096);

    Label fn = b.newLabel();
    Label over = b.newLabel();
    b.jmp(over);
    b.bind(fn); // small evaluation helper
    emitAluBlock(b, srng, 8, 15);
    emitPadding(b, srng, 1, 8);
    b.ret();
    b.bind(over);

    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 12);
    emitPadding(b, srng, 4, 8);
    emitComplexDiverge(b, srng, 24, 9, 1014, 31);
    b.call(fn);
    emitPadding(b, srng, 4, 8);
    emitAluBlock(b, srng, 6, 23);

    epilogue(b, loop);
    return b.build();
}

Program
make_eon(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0xE07);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 2048);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 11);
    // ILP-rich arithmetic (C++ ray tracer flavour).
    b.fmul(15, 16, 24);
    b.fadd(16, 17, 24);
    b.fmul(17, 18, 23);
    b.fadd(18, 19, 23);
    b.fmul(19, 20, 24);
    b.fadd(20, 21, 24);
    emitPadding(b, srng, 5, 3);
    // Hard region only every 4th iteration.
    {
        Label g = emitPeriodicGuardBegin(b, 3);
        emitComplexDiverge(b, srng, 24, 7, 1016, 63);
        b.bind(g);
    }
    emitPadding(b, srng, 4, 3);

    epilogue(b, loop);
    return b.build();
}

Program
make_gap(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x6A9);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 4096);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 12);
    emitPadding(b, srng, 5, 3);
    // Rare and poorly merging diverge region: the profiled CFM is
    // reached well under half the time (case-1/3 source).
    {
        Label g = emitPeriodicGuardBegin(b, 15);
        emitComplexDiverge(b, srng, 24, 10, 1010, 1);
        b.bind(g);
    }
    emitPadding(b, srng, 5, 3);
    emitAluBlock(b, srng, 6, 24);

    epilogue(b, loop);
    return b.build();
}

Program
make_gcc(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x6CC);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 4096);
    prologue(b, drng, wp, 600);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 12);
    emitPadding(b, srng, 2, 6);
    // Hard branches buried in non-reconverging regions: candidates for
    // neither DHP nor DMP (no CFM within 120 instructions).
    emitNonMergeable(b, srng, 24, 130);
    emitPadding(b, srng, 2, 6);
    // Indirect dispatch: random selector every 8th iteration, periodic
    // otherwise (a learnable mix with occasional target misses).
    b.andi(9, rCnt, 7);
    Label rnd = b.newLabel();
    Label dispatch = b.newLabel();
    b.beq(9, 0, rnd);
    b.andi(25, rCnt, 7);
    b.jmp(dispatch);
    b.bind(rnd);
    b.andi(25, 23, 7);
    b.bind(dispatch);
    emitIndirectSwitch(b, srng, 25, 8, 6);
    b.shri(26, 24, 13);
    emitNonMergeable(b, srng, 26, 130);
    emitPadding(b, srng, 2, 6);

    epilogue(b, loop);
    return b.build();
}

Program
make_gzip(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x6219);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 8192);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 13);
    emitPadding(b, srng, 3, 10);
    // Moderately merging diverge region.
    emitComplexDiverge(b, srng, 24, 10, 1012, 3);
    emitPadding(b, srng, 4, 10);
    b.andi(8, rCnt, 8191);
    b.shli(8, 8, 3);
    b.add(8, 8, rOut);
    b.st(8, 0, 24);

    epilogue(b, loop);
    return b.build();
}

Program
make_mcf(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x3CF);
    Random drng(wp.seed);
    // 4MB of random next-pointers (indices into the same table).
    constexpr unsigned table_log2 = 19; // 512K words = 4MB > 1MB L2
    seedData(b, drng, wp.dataBase, 1u << table_log2,
             (1u << table_log2) - 1);
    prologue(b, drng, wp, 500);
    b.li(25, 1); // current node index
    Label loop = b.newLabel();
    b.bind(loop);

    // Dependent pointer chase: idx = table[idx] (memory-bound core).
    b.shli(8, 25, 3);
    b.add(8, 8, rData);
    b.ld(25, 8, 0);
    emitPadding(b, srng, 2, 8);
    // Simple hammock on the loaded (random) value: the DHP-friendly
    // misprediction population (44% in the paper).
    emitSimpleHammock(b, srng, 25, 3, 5, 5);
    emitPadding(b, srng, 2, 8);
    // Complex diverge region every 2nd iteration.
    {
        Label g = emitPeriodicGuardBegin(b, 1);
        emitComplexDiverge(b, srng, 25, 7, 1014, 31);
        b.bind(g);
    }
    // Non-mergeable region every 4th iteration.
    {
        Label g = emitPeriodicGuardBegin(b, 3);
        emitNonMergeable(b, srng, 25, 126);
        b.bind(g);
    }
    emitPadding(b, srng, 2, 8);

    epilogue(b, loop);
    return b.build();
}

Program
make_parser(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x9A45E);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 8192);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 13);
    emitPadding(b, srng, 2, 10);
    // Two well-merging single-CFM regions per iteration, plus a deep
    // chained region (2.7.3 showcase) every 4th iteration.
    emitComplexDiverge(b, srng, 24, 9, 1016, 63);
    emitPadding(b, srng, 2, 10);
    b.shri(25, 24, 11);
    emitComplexDiverge(b, srng, 25, 10, 1016, 63);
    emitPadding(b, srng, 1, 10);
    {
        Label g = emitPeriodicGuardBegin(b, 3);
        b.shri(26, 24, 21);
        emitDeepDiverge(b, srng, 26);
        b.bind(g);
    }
    emitPadding(b, srng, 1, 10);

    epilogue(b, loop);
    return b.build();
}

Program
make_perlbmk(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x9E41);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 2048);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    // Near-perfectly predictable: periodic selector dispatch whose
    // selector bits are encoded into the global history by two
    // learnable branches, so the indirect target cache can
    // distinguish the four targets.
    b.andi(23, rCnt, 1);
    {
        // A branch to its own fall-through: it records the selector bit
        // in the history (so the indirect target cache can learn the
        // dispatch) but can never mispredict and is not a hammock.
        Label l1 = b.newLabel();
        b.beq(23, 0, l1);
        b.bind(l1);
    }
    emitIndirectSwitch(b, srng, 23, 2, 10);
    emitPadding(b, srng, 2, 1);
    emitTableLoad(b, 24, rCnt, 11);
    emitPadding(b, srng, 2, 1);
    emitAluBlock(b, srng, 10, 24);

    epilogue(b, loop);
    return b.build();
}

Program
make_twolf(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x72013);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 16384);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 14);
    emitPadding(b, srng, 3, 8);
    emitComplexDiverge(b, srng, 24, 10, 1016, 31);
    emitPadding(b, srng, 2, 8);
    // Multi-merge region (2.7.1 showcase) every 2nd iteration.
    {
        Label g = emitPeriodicGuardBegin(b, 1);
        b.shri(25, 24, 7);
        emitTableLoad(b, 26, 25, 14);
        emitMultiMergeDiverge(b, srng, 26);
        b.bind(g);
    }
    emitPadding(b, srng, 3, 8);
    b.andi(8, rCnt, 16383);
    b.shli(8, 8, 3);
    b.add(8, 8, rOut);
    b.st(8, 0, 24);

    epilogue(b, loop);
    return b.build();
}

Program
make_vortex(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x40127E);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 4096);

    Label fn = b.newLabel();
    Label over = b.newLabel();
    b.jmp(over);
    b.bind(fn);
    emitAluBlock(b, srng, 8, 15);
    b.ret();
    b.bind(over);

    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 12);
    emitPadding(b, srng, 4, 3);
    b.call(fn);
    // Hard region only every 16th iteration.
    {
        Label g = emitPeriodicGuardBegin(b, 15);
        emitComplexDiverge(b, srng, 24, 8, 1016, 63);
        b.bind(g);
    }
    emitPadding(b, srng, 4, 3);
    b.andi(8, rCnt, 4095);
    b.shli(8, 8, 3);
    b.add(8, 8, rOut);
    b.st(8, 0, 24);

    epilogue(b, loop);
    return b.build();
}

Program
make_vpr(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x9912);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 8192);
    prologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    emitTableLoad(b, 24, 23, 13);
    emitPadding(b, srng, 2, 10);
    // Hard simple hammock every 2nd iteration (the ~11% DHP-eligible
    // slice of vpr's mispredictions).
    {
        Label g = emitPeriodicGuardBegin(b, 1);
        emitSimpleHammock(b, srng, 24, 1, 5, 5);
        b.bind(g);
    }
    // Two dominant complex diverge regions per iteration plus a deep
    // chained region every 4th iteration.
    emitComplexDiverge(b, srng, 24, 9, 1016, 63);
    emitPadding(b, srng, 2, 10);
    b.shri(25, 24, 19);
    emitComplexDiverge(b, srng, 25, 10, 1018, 63);
    emitPadding(b, srng, 1, 10);
    {
        Label g = emitPeriodicGuardBegin(b, 3);
        b.shri(26, 24, 9);
        emitDeepDiverge(b, srng, 26);
        b.bind(g);
    }
    emitPadding(b, srng, 1, 10);

    epilogue(b, loop);
    return b.build();
}

} // namespace

Program
buildIntWorkload(const std::string &name, const WorkloadParams &wp,
                 bool &found)
{
    found = true;
    if (name == "bzip2")
        return make_bzip2(wp);
    if (name == "crafty")
        return make_crafty(wp);
    if (name == "eon")
        return make_eon(wp);
    if (name == "gap")
        return make_gap(wp);
    if (name == "gcc")
        return make_gcc(wp);
    if (name == "gzip")
        return make_gzip(wp);
    if (name == "mcf")
        return make_mcf(wp);
    if (name == "parser")
        return make_parser(wp);
    if (name == "perlbmk")
        return make_perlbmk(wp);
    if (name == "twolf")
        return make_twolf(wp);
    if (name == "vortex")
        return make_vortex(wp);
    if (name == "vpr")
        return make_vpr(wp);
    found = false;
    return Program{};
}

} // namespace dmp::workloads
