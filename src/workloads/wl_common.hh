/**
 * @file
 * Shared code-emission idioms for the synthetic SPEC-like workloads.
 *
 * Every workload is a loop nest over pseudo-random data whose branch
 * structure is engineered to match one paper benchmark's control-flow
 * character: the mix of simple hammocks, complex diverge structures
 * (paper Figure 3 shapes), non-mergeable complex control flow, loop
 * behaviour, and memory footprint.
 *
 * Register conventions used by all workloads:
 *   r10 loop counter     r11 loop bound      r12 data base address
 *   r13 output base      r14 LCG state       r15-r30 scratch values
 */

#ifndef DMP_WORKLOADS_WL_COMMON_HH
#define DMP_WORKLOADS_WL_COMMON_HH

#include <cstdint>

#include "common/random.hh"
#include "isa/program.hh"

namespace dmp::workloads
{

/**
 * Construction parameters shared by every workload.
 *
 * Serialized field-by-field into sim::configFingerprint and the batch
 * profile-cache key (sim/batch.cc) — extend both when adding a field.
 */
struct WorkloadParams
{
    /** Outer-loop iterations (sized for a few hundred K instructions). */
    std::uint64_t iterations = 4000;
    /** Data seed; the profiler uses a different seed ("train input"). */
    std::uint64_t seed = 0x5eed;
    /** Base address of the workload's data region. */
    Addr dataBase = 0x100000;
};

// Well-known registers.
inline constexpr ArchReg rCnt = 10;
inline constexpr ArchReg rBound = 11;
inline constexpr ArchReg rData = 12;
inline constexpr ArchReg rOut = 13;
inline constexpr ArchReg rRng = 14;

/**
 * Emit one LCG step: rRng = rRng * A + C; dst = rRng.
 * Branches conditioned on LCG bits model data-dependent,
 * hard-to-predict branches (the predictor cannot learn them).
 */
void emitLcg(isa::ProgramBuilder &b, ArchReg dst);

/** Scratch bank used by predictable padding (consumed continuously). */
inline constexpr ArchReg kPaddingBank[8] = {15, 16, 17, 18,
                                            19, 20, 21, 22};
/**
 * Scratch bank used by hard-region arms. Keeping it distinct from the
 * padding bank models real code: values produced under a hard branch
 * are consumed *lazily*, so dynamic predication's select-uops do not
 * serialize the whole downstream instruction stream on the predicate.
 */
inline constexpr ArchReg kHardBank[8] = {32, 33, 34, 35, 36, 37, 38, 39};

/**
 * Emit `n` dependent-ish ALU instructions over an 8-register scratch
 * bank, derived from `mix`; gives hammock arms real register writes so
 * select-uops have work to merge.
 */
void emitAluBlock(isa::ProgramBuilder &b, Random &rng, unsigned n,
                  ArchReg mix, const ArchReg *bank = kPaddingBank);

/**
 * Emit a *simple hammock*: if/if-else on bit `bit` of `condReg`, with
 * straight-line arms of the given lengths (no internal control flow).
 * taken_permille controls the arm bias via a threshold compare instead
 * when nonzero (condReg % 1024 < taken_permille).
 */
void emitSimpleHammock(isa::ProgramBuilder &b, Random &rng,
                       ArchReg condReg, unsigned bit, unsigned thenLen,
                       unsigned elseLen);

/**
 * Emit the paper's Figure 3 complex-diverge shape:
 *
 *       A (hard-to-predict, on `condReg` bit0)
 *      / \
 *     B   C           (each with a biased internal branch)
 *    /|   |\
 *   D E   F G
 *    \|   |/
 *     \   /
 *       H  <- CFM on the frequently executed paths
 *
 * A side path occasionally jumps past H to a cold block, so H is a
 * frequent-path merge point but not the post-dominator. The escape is
 * loop-counter-periodic — `(iteration & esc_mask) == 0` — which makes
 * the escape branch itself predictable while still denying the CFM
 * point at a controlled rate (the knob behind the case-1/3-heavy
 * benchmarks like gap and gzip). esc_mask == 0 disables escapes.
 * @param reconv_permille bias of the *internal* branches toward the
 *        arms that rejoin at H directly.
 */
void emitComplexDiverge(isa::ProgramBuilder &b, Random &rng,
                        ArchReg condReg, unsigned armLen,
                        unsigned reconv_permille,
                        std::uint64_t esc_mask);

/**
 * Emit a chained multi-merge diverge region:
 *
 *        A  (hard)
 *       / \
 *      Bx  By          (hard branches nested in each arm)
 *     /|    |\
 *   H1 H2  H1 H2       (cross-merging at two alternative points)
 *    |   \ /   |
 *   [~34 insts] [~34 insts]
 *        \    /
 *         END          (common post-dominator, > 120 insts from A)
 *
 * A's profiled CFM points are {H1, H2} (each reached by ~50% of both
 * sides); END, although closer than the search bound, is shadowed by
 * them (first-reconvergence crediting in the profiler). The basic machine marks
 * only H1 and therefore fails to merge half of its episodes — the
 * multiple-CFM-point enhancement (section 2.7.1) recovers them. Bx/By
 * are themselves marked diverge branches (CFM = END), which exercises
 * the multiple-diverge-branch policy (section 2.7.3).
 */
void emitMultiMergeDiverge(isa::ProgramBuilder &b, Random &rng,
                           ArchReg condReg, unsigned hBodyLen = 34);

/**
 * Emit a deep chained diverge region (the multiple-diverge-branch
 * showcase, section 2.7.3):
 *
 *        A (hard)
 *       /        \
 *   armX;Bx     armY;By      (nested hard branches)
 *    /   \       /   \
 *  sub1 detour sub3 detour   (detour ~112 straight-line insts)
 *    \     |     /     |
 *     H    |    H      |
 *      \   |   /       |
 *        FAR  <--------+
 *
 * From A, the only qualifying CFM is H (reached by ~50% of both
 * sides): the detour routes put FAR beyond A's 120-instruction search
 * bound. From Bx/By, FAR is within bound on every route, so the nested
 * branches carry a *reliable* CFM. An episode on A therefore often
 * fails to merge, while converting to the nested branch (the 2.7.3
 * policy) covers its misprediction dependably.
 */
void emitDeepDiverge(isa::ProgramBuilder &b, Random &rng,
                     ArchReg condReg, unsigned detourLen = 112);

/**
 * Emit a deeply nested, non-reconverging control-flow region (gcc-like
 * "other complex" branches): each arm runs longer than the 120-
 * instruction CFM search bound before rejoining.
 */
void emitNonMergeable(isa::ProgramBuilder &b, Random &rng,
                      ArchReg condReg, unsigned armLen);

/**
 * Emit a switch-style indirect dispatch over `cases` equally sized
 * targets selected by `selReg % cases` (gcc/perl-like indirect jumps).
 * Must be called with the table emitted inline; control falls through
 * to the code after the dispatch.
 */
void emitIndirectSwitch(isa::ProgramBuilder &b, Random &rng,
                        ArchReg selReg, unsigned cases,
                        unsigned caseLen);

/**
 * Seed `words` pseudo-random data words at `base` and return the base.
 */
Addr seedData(isa::ProgramBuilder &b, Random &rng, Addr base,
              std::size_t words, std::uint64_t value_mask = ~0ULL);

/**
 * Emit predictable filler work calibrated against Table 3: each unit is
 * roughly a dozen ALU instructions plus one strongly *biased* branch.
 * Biased (rather than pattern-periodic) branches model SPEC's
 * predictable-branch population: they stay predictable even when
 * dynamic predication perturbs the global history.
 *
 * @param noise_permille approximate misprediction probability of each
 *        padding branch in 1/1024 units (1 = ~0.1%).
 */
void emitPadding(isa::ProgramBuilder &b, Random &rng, unsigned units,
                 unsigned noise_permille = 8);

/**
 * Emit FP-flavoured filler (independent fmul/fadd chains + one biased
 * branch per unit) for the SPEC-FP workloads.
 */
void emitFpPadding(isa::ProgramBuilder &b, Random &rng, unsigned units,
                   unsigned noise_permille = 4);

/**
 * Open a loop-counter-periodic guard: the guarded region runs only when
 * (iteration & mask) == 0 — a perfectly learnable branch, used to set
 * the *frequency* of hard regions without adding mispredictions.
 * Bind the returned label right after the guarded region.
 */
isa::Label emitPeriodicGuardBegin(isa::ProgramBuilder &b,
                                  std::uint64_t mask);

} // namespace dmp::workloads

#endif // DMP_WORKLOADS_WL_COMMON_HH
