/**
 * @file
 * The synthetic SPEC CPU2000 stand-ins.
 *
 * The paper evaluates 12 SPEC INT 2000 benchmarks plus mesa, ammp and
 * fma3d. We cannot ship SPEC, so each workload here is engineered to
 * match the *control-flow character* that drives the paper's results
 * for the corresponding benchmark: branch misprediction rate, the
 * simple-hammock / complex-diverge / other-complex mix of Figure 6,
 * memory behaviour, and base IPC band. EXPERIMENTS.md records how the
 * reproduction tracks the paper per benchmark.
 */

#ifndef DMP_WORKLOADS_WORKLOADS_HH
#define DMP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/program.hh"
#include "workloads/wl_common.hh"

namespace dmp::workloads
{

/** Descriptor of one workload. */
struct WorkloadInfo
{
    std::string name;     ///< paper benchmark name (e.g. "bzip2")
    std::string summary;  ///< what character it reproduces
    bool floatingPoint = false;
};

/** The 15 paper benchmarks, in the paper's presentation order. */
const std::vector<WorkloadInfo> &workloadList();

/** Build the named workload. Fatal on unknown names. */
isa::Program buildWorkload(const std::string &name,
                           const WorkloadParams &params = WorkloadParams{});

/**
 * Build a pseudo-random yet structurally valid program for property
 * tests: random CFGs of hammocks, diverge shapes, loops, calls, and
 * memory traffic. Same structural seed => same code; `data_seed` varies
 * the data. Programs always terminate within a bounded instruction
 * count.
 */
isa::Program buildRandomProgram(std::uint64_t structure_seed,
                                std::uint64_t data_seed,
                                unsigned size_class = 1);

} // namespace dmp::workloads

#endif // DMP_WORKLOADS_WORKLOADS_HH
