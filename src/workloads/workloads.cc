#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace dmp::workloads
{

// Implemented in wl_int.cc / wl_fp.cc.
isa::Program buildIntWorkload(const std::string &name,
                              const WorkloadParams &wp, bool &found);
isa::Program buildFpWorkload(const std::string &name,
                             const WorkloadParams &wp, bool &found);

const std::vector<WorkloadInfo> &
workloadList()
{
    static const std::vector<WorkloadInfo> list = {
        {"bzip2", "complex-diverge heavy, high misprediction rate",
         false},
        {"crafty", "predictable search with some complex diverge",
         false},
        {"eon", "predictable C++ ray tracer, high IPC", false},
        {"gap", "diverge branches with poor reconvergence (case 3)",
         false},
        {"gcc", "other-complex control flow; DMP cannot help", false},
        {"gzip", "diverge branches with moderate reconvergence", false},
        {"mcf", "memory-bound pointer chase; simple hammocks dominate",
         false},
        {"parser", "well-merging complex diverge; biggest DMP win",
         false},
        {"perlbmk", "near-perfectly predictable (reduced input)", false},
        {"twolf", "diverge-heavy place-and-route", false},
        {"vortex", "predictable OO database, high IPC", false},
        {"vpr", "simple hammocks + dominant complex diverge", false},
        {"mesa", "FP rasterizer; flushes removed but little CI work",
         true},
        {"ammp", "regular FP, low misprediction rate", true},
        {"fma3d", "FP kernels guarded by diverge structures", true},
    };
    return list;
}

isa::Program
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    bool found = false;
    isa::Program prog = buildIntWorkload(name, params, found);
    if (found)
        return prog;
    prog = buildFpWorkload(name, params, found);
    if (found)
        return prog;
    dmp_fatal("unknown workload: ", name);
}

} // namespace dmp::workloads
