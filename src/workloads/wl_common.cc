#include "workloads/wl_common.hh"

#include "common/logging.hh"

namespace dmp::workloads
{

using isa::kInstBytes;
using isa::Label;
using isa::Opcode;
using isa::ProgramBuilder;

void
emitLcg(ProgramBuilder &b, ArchReg dst)
{
    // Knuth's MMIX LCG, split because immediates are emitted verbatim.
    b.muli(rRng, rRng, 6364136223846793005LL);
    b.addi(rRng, rRng, 1442695040888963407LL);
    // Use the strong upper bits.
    b.shri(dst, rRng, 33);
}

void
emitAluBlock(ProgramBuilder &b, Random &rng, unsigned n, ArchReg mix,
             const ArchReg *bank)
{
    const ArchReg *scratch = bank;
    for (unsigned i = 0; i < n; ++i) {
        ArchReg rd = scratch[rng.below(8)];
        ArchReg rs = scratch[rng.below(8)];
        switch (rng.below(5)) {
          case 0:
            b.add(rd, rs, mix);
            break;
          case 1:
            b.xor_(rd, rs, mix);
            break;
          case 2:
            b.addi(rd, rs, std::int64_t(rng.below(64)));
            break;
          case 3:
            b.shri(rd, rs, std::int64_t(rng.below(8)) + 1);
            break;
          default:
            b.sub(rd, rs, mix);
            break;
        }
    }
}

namespace
{

/** One biased skip over a few instructions (~noise/1024 mispredicts). */
void
emitBiasedSkip(ProgramBuilder &b, Random &rng, unsigned noise_permille)
{
    unsigned noise = noise_permille ? noise_permille : 1;
    b.shri(9, rRng, unsigned(rng.below(20)) + 8);
    b.andi(9, 9, 1023);
    b.slti(9, 9, std::int64_t(1024 - noise));
    isa::Label skip = b.newLabel();
    b.bne(9, 0, skip);
    emitAluBlock(b, rng, 3, 23);
    b.bind(skip);
}

} // namespace

void
emitSimpleHammock(ProgramBuilder &b, Random &rng, ArchReg condReg,
                  unsigned bit, unsigned thenLen, unsigned elseLen)
{
    // r9 = condition bit
    b.shri(9, condReg, bit);
    b.andi(9, 9, 1);
    Label else_l = b.newLabel();
    Label join = b.newLabel();
    b.beq(9, 0, else_l);
    emitAluBlock(b, rng, thenLen, condReg, kHardBank);
    if (elseLen > 0) {
        b.jmp(join);
        b.bind(else_l);
        emitAluBlock(b, rng, elseLen, condReg, kHardBank);
        b.bind(join);
    } else {
        b.bind(else_l);
    }
}

void
emitComplexDiverge(ProgramBuilder &b, Random &rng, ArchReg condReg,
                   unsigned armLen, unsigned reconv_permille,
                   std::uint64_t esc_mask)
{
    Label side_c = b.newLabel();
    Label block_e = b.newLabel();
    Label block_g = b.newLabel();
    Label cfm = b.newLabel();
    Label cold = b.newLabel();
    Label after_cold = b.newLabel();

    auto emit_escape = [&] {
        if (esc_mask == 0)
            return;
        // Periodic escape: predictable for the branch predictor but it
        // still takes control past the CFM point at rate 1/(mask+1).
        b.andi(9, rCnt, std::int64_t(esc_mask));
        b.beq(9, 0, cold);
    };

    // A: hard-to-predict branch on bit 0 of condReg.
    b.andi(8, condReg, 1);
    b.bne(8, 0, side_c);

    // B side. Internal branch biased toward rejoining at the CFM.
    emitAluBlock(b, rng, armLen, condReg, kHardBank);
    b.shri(9, condReg, 8);
    b.andi(9, 9, 1023);
    b.slti(9, 9, std::int64_t(reconv_permille));
    b.bne(9, 0, block_e); // frequently to E
    // D: less frequent arm.
    emitAluBlock(b, rng, armLen / 2 + 1, condReg, kHardBank);
    emitAluBlock(b, rng, 2, condReg, kHardBank);
    b.jmp(cfm);
    b.bind(block_e); // E
    emitAluBlock(b, rng, armLen / 2 + 1, condReg, kHardBank);
    b.jmp(cfm);

    // C side.
    b.bind(side_c);
    emitAluBlock(b, rng, armLen, condReg, kHardBank);
    b.shri(9, condReg, 14);
    b.andi(9, 9, 1023);
    b.slti(9, 9, std::int64_t(reconv_permille));
    b.bne(9, 0, block_g); // frequently to G
    // F arm with its own escape.
    emitAluBlock(b, rng, armLen / 2 + 1, condReg, kHardBank);
    emit_escape();
    emitAluBlock(b, rng, 2, condReg, kHardBank);
    b.jmp(cfm);
    b.bind(block_g); // G
    emitAluBlock(b, rng, armLen / 2 + 1, condReg, kHardBank);
    emit_escape();
    b.jmp(cfm);

    // Cold non-merging region (skipped on the frequent paths).
    b.bind(cold);
    emitAluBlock(b, rng, armLen * 2 + 8, condReg, kHardBank);
    b.jmp(after_cold);

    // H: the control-flow merge point of the frequent paths.
    b.bind(cfm);
    emitAluBlock(b, rng, 2, condReg, kHardBank);
    b.bind(after_cold);
}

void
emitMultiMergeDiverge(ProgramBuilder &b, Random &rng, ArchReg condReg,
                      unsigned hBodyLen)
{
    Label arm_y = b.newLabel();
    Label h1 = b.newLabel();
    Label h2 = b.newLabel();
    Label end = b.newLabel();

    // A: hard branch.
    b.andi(8, condReg, 1);
    b.bne(8, 0, arm_y);

    // Arm X with nested hard branch Bx.
    emitAluBlock(b, rng, 6, condReg, kHardBank);
    b.shri(9, condReg, 3);
    b.andi(9, 9, 1);
    {
        Label sub2 = b.newLabel();
        b.beq(9, 0, sub2); // Bx (hard)
        emitAluBlock(b, rng, 5, condReg, kHardBank);
        b.jmp(h1);
        b.bind(sub2);
        emitAluBlock(b, rng, 5, condReg, kHardBank);
        b.jmp(h2);
    }

    // Arm Y with nested hard branch By.
    b.bind(arm_y);
    emitAluBlock(b, rng, 6, condReg, kHardBank);
    b.shri(9, condReg, 5);
    b.andi(9, 9, 1);
    {
        Label sub4 = b.newLabel();
        b.beq(9, 0, sub4); // By (hard)
        emitAluBlock(b, rng, 5, condReg, kHardBank);
        b.jmp(h1);
        b.bind(sub4);
        emitAluBlock(b, rng, 5, condReg, kHardBank);
        b.jmp(h2);
    }

    // H1 / H2: the alternative merge points, each followed by a long
    // control-independent body so END is beyond the CFM search bound.
    b.bind(h1);
    emitAluBlock(b, rng, hBodyLen, condReg, kHardBank);
    b.jmp(end);
    b.bind(h2);
    emitAluBlock(b, rng, hBodyLen, condReg, kHardBank);
    b.bind(end);
}

void
emitDeepDiverge(ProgramBuilder &b, Random &rng, ArchReg condReg,
                unsigned detourLen)
{
    Label arm_y = b.newLabel();
    Label detour_x = b.newLabel();
    Label detour_y = b.newLabel();
    Label h = b.newLabel();
    Label far = b.newLabel();

    // A: hard branch.
    b.andi(8, condReg, 1);
    b.bne(8, 0, arm_y);

    // Arm X with nested hard branch Bx.
    emitAluBlock(b, rng, 6, condReg, kHardBank);
    b.shri(9, condReg, 3);
    b.andi(9, 9, 1);
    b.beq(9, 0, detour_x); // Bx (hard)
    emitAluBlock(b, rng, 4, condReg, kHardBank);
    b.jmp(h);
    b.bind(detour_x);
    emitAluBlock(b, rng, detourLen, condReg, kHardBank);
    b.jmp(far);

    // Arm Y with nested hard branch By.
    b.bind(arm_y);
    emitAluBlock(b, rng, 6, condReg, kHardBank);
    b.shri(9, condReg, 5);
    b.andi(9, 9, 1);
    b.beq(9, 0, detour_y); // By (hard)
    emitAluBlock(b, rng, 4, condReg, kHardBank);
    b.jmp(h);
    b.bind(detour_y);
    emitAluBlock(b, rng, detourLen, condReg, kHardBank);
    b.jmp(far);

    // H: A's (partial) merge point; falls through to FAR.
    b.bind(h);
    emitAluBlock(b, rng, 8, condReg, kHardBank);
    b.bind(far);
    emitAluBlock(b, rng, 4, condReg, kHardBank);
}

void
emitNonMergeable(ProgramBuilder &b, Random &rng, ArchReg condReg,
                 unsigned armLen)
{
    Label other = b.newLabel();
    Label join = b.newLabel();

    b.andi(8, condReg, 1);
    b.bne(8, 0, other);
    // Each arm is far longer than the 120-instruction CFM search bound.
    // Internal branches are strongly biased: the mispredictions of this
    // region come from the top branch, which no merge point can cover.
    emitAluBlock(b, rng, armLen / 3, condReg, kHardBank);
    emitBiasedSkip(b, rng, 4);
    emitAluBlock(b, rng, armLen / 3, condReg, kHardBank);
    emitBiasedSkip(b, rng, 4);
    emitAluBlock(b, rng, armLen / 3, condReg, kHardBank);
    b.jmp(join);
    b.bind(other);
    emitAluBlock(b, rng, armLen / 3, condReg, kHardBank);
    emitBiasedSkip(b, rng, 4);
    emitAluBlock(b, rng, armLen / 3, condReg, kHardBank);
    emitBiasedSkip(b, rng, 4);
    emitAluBlock(b, rng, armLen / 3, condReg, kHardBank);
    b.bind(join);
}

void
emitIndirectSwitch(ProgramBuilder &b, Random &rng, ArchReg selReg,
                   unsigned cases, unsigned caseLen)
{
    dmp_assert(cases >= 2, "switch needs at least two cases");

    // Lay out the case blocks first (jumped over on entry) so their
    // base address is known when the dispatch code is emitted.
    Label over = b.newLabel();
    Label cont = b.newLabel();
    b.jmp(over);

    // Each case block occupies exactly `stride` instructions.
    const unsigned stride = caseLen + 1; // body + jmp cont
    Addr first_case = b.here();
    for (unsigned c = 0; c < cases; ++c) {
        Addr start = b.here();
        emitAluBlock(b, rng, caseLen, selReg);
        b.jmp(cont);
        dmp_assert(b.here() - start == stride * kInstBytes,
                   "switch case block size drifted");
    }

    b.bind(over);
    // target = first_case + (sel % cases) * stride * 4
    b.andi(8, selReg, 0xffff);
    b.li(9, std::int64_t(cases));
    b.divq(7, 8, 9);
    b.muli(7, 7, std::int64_t(cases));
    b.sub(8, 8, 7); // r8 = sel % cases
    b.muli(8, 8, std::int64_t(stride * kInstBytes));
    b.li(9, std::int64_t(first_case));
    b.add(9, 9, 8);
    b.jr(9);
    b.bind(cont);
}

Addr
seedData(ProgramBuilder &b, Random &rng, Addr base, std::size_t words,
         std::uint64_t value_mask)
{
    for (std::size_t i = 0; i < words; ++i)
        b.dataWord(base + i * sizeof(Word), rng.next() & value_mask);
    return base;
}

void
emitPadding(ProgramBuilder &b, Random &rng, unsigned units,
            unsigned noise_permille)
{
    for (unsigned u = 0; u < units; ++u) {
        emitAluBlock(b, rng, 7 + unsigned(rng.below(4)), 23);
        if (rng.below(3) != 2)
            emitBiasedSkip(b, rng, noise_permille);
        else
            emitAluBlock(b, rng, 4, 23);
    }
}

void
emitFpPadding(ProgramBuilder &b, Random &rng, unsigned units,
              unsigned noise_permille)
{
    static constexpr ArchReg f[] = {15, 16, 17, 18, 19, 20};
    for (unsigned u = 0; u < units; ++u) {
        for (unsigned i = 0; i < 8; ++i) {
            ArchReg a = f[(u + i) % 6];
            ArchReg c = f[(u + i + 2) % 6];
            if (i % 2)
                b.fadd(a, c, 23);
            else
                b.fmul(a, c, 23);
        }
        if (rng.chancePercent(50))
            emitBiasedSkip(b, rng, noise_permille);
        else
            emitAluBlock(b, rng, 3, 23);
    }
}

Label
emitPeriodicGuardBegin(ProgramBuilder &b, std::uint64_t mask)
{
    Label skip = b.newLabel();
    b.andi(9, rCnt, std::int64_t(mask));
    b.bne(9, 0, skip);
    return skip;
}

} // namespace dmp::workloads
