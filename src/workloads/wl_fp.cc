/**
 * @file
 * Floating-point workloads (mesa, ammp, fma3d) — the three SPEC FP
 * benchmarks the paper keeps because they lose at least 3% to branch
 * mispredictions. Calibrated against Table 3:
 *
 *   bench   target misp/KI   note
 *   mesa    0.9              diverge-dominated but little CI slack
 *   ammp    0.5              regular FP, low misprediction rate
 *   fma3d   2.1              diverge structures between FP kernels
 */

#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace dmp::workloads
{

using isa::Label;
using isa::Program;
using isa::ProgramBuilder;

namespace
{

void
fpPrologue(ProgramBuilder &b, Random &drng, const WorkloadParams &wp,
           std::uint64_t iter_scale_permille = 1000)
{
    std::uint64_t iters =
        std::max<std::uint64_t>(1, wp.iterations * iter_scale_permille /
                                       1000);
    b.li(rCnt, 0);
    b.li(rBound, std::int64_t(iters));
    b.li(rData, std::int64_t(wp.dataBase));
    b.li(rOut, std::int64_t(wp.dataBase + (8u << 20)));
    b.li(rRng, std::int64_t(drng.next() >> 1));
    for (ArchReg r = 15; r <= 22; ++r)
        b.li(r, std::int64_t(drng.below(1 << 20)));
    for (ArchReg r = 32; r <= 39; ++r)
        b.li(r, std::int64_t(drng.below(1 << 20)));
}

void
fpEpilogue(ProgramBuilder &b, Label loop)
{
    b.addi(rCnt, rCnt, 1);
    b.blt(rCnt, rBound, loop);
    b.fadd(15, 15, 16);
    b.fadd(15, 15, 17);
    b.add(33, 33, 34);
    b.xor_(15, 15, 33);
    b.st(rOut, 0, 15);
    b.halt();
}

Program
make_mesa(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0x3E5A);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 4096);
    fpPrologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    b.andi(8, 23, 4095);
    b.shli(8, 8, 3);
    b.add(8, 8, rData);
    b.ld(24, 8, 0);
    emitFpPadding(b, srng, 5, 2);
    // Hard diverge region every 4th iteration, placed right before the
    // loop back-edge so there is little control-independent slack after
    // the merge point (mesa's Figure 11-vs-Figure 9 behaviour).
    emitFpPadding(b, srng, 4, 2);
    {
        Label g = emitPeriodicGuardBegin(b, 3);
        emitComplexDiverge(b, srng, 24, 7, 1016, 63);
        b.bind(g);
    }

    fpEpilogue(b, loop);
    return b.build();
}

Program
make_ammp(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0xA339);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 65536); // 512KB working set
    fpPrologue(b, drng, wp, 800);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    b.andi(8, 23, 65535);
    b.shli(8, 8, 3);
    b.add(8, 8, rData);
    b.ld(24, 8, 0);
    b.ld(25, 8, 8 * 64); // second stream
    emitFpPadding(b, srng, 6, 2);
    // Rare hard region (every 8th iteration).
    {
        Label g = emitPeriodicGuardBegin(b, 7);
        emitComplexDiverge(b, srng, 24, 7, 1016, 63);
        b.bind(g);
    }
    emitFpPadding(b, srng, 4, 2);
    b.fadd(15, 15, 25);

    fpEpilogue(b, loop);
    return b.build();
}

Program
make_fma3d(const WorkloadParams &wp)
{
    ProgramBuilder b;
    Random srng(0xF3A3D);
    Random drng(wp.seed);
    seedData(b, drng, wp.dataBase, 16384);
    fpPrologue(b, drng, wp);
    Label loop = b.newLabel();
    b.bind(loop);

    emitLcg(b, 23);
    b.andi(8, 23, 16383);
    b.shli(8, 8, 3);
    b.add(8, 8, rData);
    b.ld(24, 8, 0);
    emitFpPadding(b, srng, 3, 4);
    // Well-merging diverge region every 2nd iteration and a multi-merge
    // region (2.7.1 showcase) every 4th.
    {
        Label g = emitPeriodicGuardBegin(b, 1);
        emitComplexDiverge(b, srng, 24, 9, 1016, 31);
        b.bind(g);
    }
    emitFpPadding(b, srng, 2, 4);
    {
        Label g = emitPeriodicGuardBegin(b, 3);
        b.shri(25, 24, 13);
        emitMultiMergeDiverge(b, srng, 25, 30);
        b.bind(g);
    }
    emitFpPadding(b, srng, 2, 4);

    fpEpilogue(b, loop);
    return b.build();
}

} // namespace

Program
buildFpWorkload(const std::string &name, const WorkloadParams &wp,
                bool &found)
{
    found = true;
    if (name == "mesa")
        return make_mesa(wp);
    if (name == "ammp")
        return make_ammp(wp);
    if (name == "fma3d")
        return make_fma3d(wp);
    found = false;
    return Program{};
}

} // namespace dmp::workloads
